// The unified experiment API: registry lookup and construction,
// ExperimentSpec flag-parse / serialize round-trips, driver observer
// invocation order, and the JSON result writer.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "fl/checkpoint.h"
#include "fl/experiment.h"
#include "fl/registry.h"
#include "fl/subfedavg.h"
#include "util/check.h"
#include "util/logging.h"

namespace subfed {
namespace {

class ExperimentApi : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { set_log_level(LogLevel::kWarn); }

  static const FederatedData& data() {
    static FederatedData instance(DatasetSpec::mnist(), [] {
      FederatedDataConfig config;
      config.partition = {4, 2, 20};
      config.test_per_class = 4;
      config.seed = 9;
      return config;
    }());
    return instance;
  }

  static FlContext ctx() {
    FlContext c;
    c.data = &data();
    c.spec = ModelSpec::cnn5(10);
    c.train = {/*epochs=*/1, /*batch=*/10};
    c.seed = 9;
    return c;
  }
};

// --- registry ---------------------------------------------------------------

TEST_F(ExperimentApi, RegistryListsAllBuiltins) {
  const std::vector<std::string> names = list_algorithms();
  for (const char* expected : {"standalone", "fedavg", "fedprox", "lg_fedavg", "fedmtl",
                               "fedavg_ft", "subfedavg_un", "subfedavg_hy"}) {
    EXPECT_TRUE(std::find(names.begin(), names.end(), expected) != names.end())
        << expected << " missing from registry";
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST_F(ExperimentApi, RegistryCreatesEveryBuiltin) {
  for (const std::string& name : list_algorithms()) {
    const auto algorithm = registry().create(name, ctx());
    ASSERT_NE(algorithm, nullptr) << name;
    EXPECT_FALSE(algorithm->name().empty()) << name;
    EXPECT_EQ(algorithm->num_clients(), data().num_clients()) << name;
  }
}

TEST_F(ExperimentApi, RegistryUnknownNameThrowsWithKnownList) {
  try {
    registry().create("no_such_algo", ctx());
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no_such_algo"), std::string::npos);
    EXPECT_NE(what.find("subfedavg_un"), std::string::npos);  // lists known names
  }
  EXPECT_FALSE(registry().contains("no_such_algo"));
  EXPECT_THROW(registry().info("no_such_algo"), CheckError);
}

TEST_F(ExperimentApi, RegistryAliasesResolve) {
  EXPECT_TRUE(registry().contains("mtl"));
  EXPECT_TRUE(registry().contains("lgfedavg"));
  EXPECT_EQ(registry().info("mtl").name, "fedmtl");
  EXPECT_EQ(registry().create("lgfedavg", ctx())->name(), "LG-FedAvg");
}

TEST_F(ExperimentApi, RegistryParamsSelectVariant) {
  const auto un = registry().create("subfedavg_un", ctx());
  const auto hy = registry().create("subfedavg_hy", ctx());
  EXPECT_FALSE(dynamic_cast<SubFedAvg&>(*un).hybrid());
  EXPECT_TRUE(dynamic_cast<SubFedAvg&>(*hy).hybrid());
  EXPECT_EQ(un->name(), "Sub-FedAvg (Un)");
  EXPECT_EQ(hy->name(), "Sub-FedAvg (Hy)");
}

TEST_F(ExperimentApi, AlgoParamsTypedAccessors) {
  AlgoParams params;
  params.set("mu", "0.25").set_size_t("finetune_epochs", 3).set_bool("strict", true);
  EXPECT_DOUBLE_EQ(params.get_double("mu", 0.1), 0.25);
  EXPECT_EQ(params.get_size_t("finetune_epochs", 1), 3u);
  EXPECT_TRUE(params.get_bool("strict", false));
  EXPECT_DOUBLE_EQ(params.get_double("absent", 0.7), 0.7);
  params.set("bad", "not-a-number");
  EXPECT_THROW(params.get_double("bad", 0.0), CheckError);
}

// --- ExperimentSpec ---------------------------------------------------------

std::vector<char*> argv_of(std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.push_back(nullptr);  // argv[0] = program name slot
  for (std::string& arg : args) argv.push_back(arg.data());
  return argv;
}

TEST_F(ExperimentApi, SpecParsesFlags) {
  std::vector<std::string> args{"--dataset", "cifar10",  "--algo",   "subfedavg_hy",
                                "--clients", "24",       "--rounds", "20",
                                "--sample",  "0.3",      "--target", "0.7",
                                "--partition", "dirichlet", "--alpha", "0.1",
                                "--algo-param", "bn_l1=0.001"};
  std::vector<char*> argv = argv_of(args);
  ExperimentSpec spec;
  spec.parse_args(static_cast<int>(argv.size()), argv.data());

  EXPECT_EQ(spec.dataset, "cifar10");
  EXPECT_EQ(spec.algo, "subfedavg_hy");
  EXPECT_EQ(spec.clients, 24u);
  EXPECT_EQ(spec.rounds, 20u);
  EXPECT_DOUBLE_EQ(spec.sample, 0.3);
  EXPECT_DOUBLE_EQ(spec.target, 0.7);
  EXPECT_DOUBLE_EQ(spec.alpha, 0.1);
  EXPECT_EQ(spec.algo_params.get_string("bn_l1", ""), "0.001");
  EXPECT_FALSE(spec.help_requested);

  const FederatedDataConfig config = spec.data_config();
  EXPECT_EQ(config.partition.kind, PartitionKind::kDirichlet);
  EXPECT_DOUBLE_EQ(config.partition.dirichlet_alpha, 0.1);
  EXPECT_EQ(spec.model_spec().arch, ModelSpec::Arch::kLeNet5);  // auto → 3-channel

  const DriverConfig driver = spec.driver_config();
  EXPECT_EQ(driver.rounds, 20u);
  EXPECT_DOUBLE_EQ(driver.sample_rate, 0.3);
}

TEST_F(ExperimentApi, SpecRejectsDanglingAndUnknownFlags) {
  {
    std::vector<std::string> args{"--rounds"};  // trailing flag, no value
    std::vector<char*> argv = argv_of(args);
    ExperimentSpec spec;
    EXPECT_THROW(spec.parse_args(static_cast<int>(argv.size()), argv.data()), CheckError);
  }
  {
    std::vector<std::string> args{"--not-a-flag", "1"};
    std::vector<char*> argv = argv_of(args);
    ExperimentSpec spec;
    EXPECT_THROW(spec.parse_args(static_cast<int>(argv.size()), argv.data()), CheckError);
  }
  {
    std::vector<std::string> args{"--rounds", "abc"};
    std::vector<char*> argv = argv_of(args);
    ExperimentSpec spec;
    EXPECT_THROW(spec.parse_args(static_cast<int>(argv.size()), argv.data()), CheckError);
  }
  {
    std::vector<std::string> args{"--help"};
    std::vector<char*> argv = argv_of(args);
    ExperimentSpec spec;
    spec.parse_args(static_cast<int>(argv.size()), argv.data());
    EXPECT_TRUE(spec.help_requested);
  }
}

TEST_F(ExperimentApi, SpecKvRoundTripsThroughFlagsAndText) {
  std::vector<std::string> args{"--dataset", "emnist", "--algo", "fedprox",
                                "--clients", "10",     "--seed", "42",
                                "--eval-every", "3",   "--out",  "r.json",
                                "--algo-param", "mu=0.2"};
  std::vector<char*> argv = argv_of(args);
  ExperimentSpec parsed;
  parsed.parse_args(static_cast<int>(argv.size()), argv.data());

  const std::string kv = parsed.to_kv();
  const ExperimentSpec restored = ExperimentSpec::from_kv(kv);
  EXPECT_EQ(restored.to_kv(), kv);
  EXPECT_EQ(restored.dataset, "emnist");
  EXPECT_EQ(restored.algo, "fedprox");
  EXPECT_EQ(restored.clients, 10u);
  EXPECT_EQ(restored.seed, 42u);
  EXPECT_EQ(restored.eval_every, 3u);
  EXPECT_EQ(restored.out, "r.json");
  EXPECT_TRUE(restored.algo_params == parsed.algo_params);
}

TEST_F(ExperimentApi, SpecFlagAppliesSavedFileAndLaterFlagsOverride) {
  ExperimentSpec saved;
  saved.dataset = "cifar10";
  saved.rounds = 7;
  const std::string path = ::testing::TempDir() + "/subfed_spec.kv";
  std::ofstream(path) << saved.to_kv();

  std::vector<std::string> args{"--spec", path, "--rounds", "9"};
  std::vector<char*> argv = argv_of(args);
  ExperimentSpec spec;
  spec.parse_args(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(spec.dataset, "cifar10");  // from the file
  EXPECT_EQ(spec.rounds, 9u);          // flag after --spec wins

  std::vector<std::string> missing{"--spec", "/nonexistent/spec.kv"};
  std::vector<char*> missing_argv = argv_of(missing);
  ExperimentSpec other;
  EXPECT_THROW(other.parse_args(static_cast<int>(missing_argv.size()), missing_argv.data()),
               CheckError);
}

TEST_F(ExperimentApi, SpecKvSkipsCommentsAndRejectsUnknownKeys) {
  const ExperimentSpec spec =
      ExperimentSpec::from_kv("# comment\n\n  \nrounds=9\ndataset=cifar100\n");
  EXPECT_EQ(spec.rounds, 9u);
  EXPECT_EQ(spec.dataset, "cifar100");
  EXPECT_THROW(ExperimentSpec::from_kv("nonsense=1\n"), CheckError);
  EXPECT_THROW(ExperimentSpec::from_kv("no equals sign\n"), CheckError);
}

TEST_F(ExperimentApi, SpecResolvesAdaptiveStepAndExplicitOverrides) {
  ExperimentSpec spec;
  spec.target = 0.5;
  spec.step = 0.0;
  spec.rounds = 20;
  spec.sample = 0.5;
  const AlgoParams resolved = spec.resolved_algo_params();
  EXPECT_DOUBLE_EQ(resolved.get_double("target", 0.0), 0.5);
  EXPECT_NEAR(resolved.get_double("step", 0.0),
              adaptive_prune_step(0.5, 20, 0.5), 1e-12);

  spec.step = 0.12;
  EXPECT_DOUBLE_EQ(spec.resolved_algo_params().get_double("step", 0.0), 0.12);

  spec.algo_params.set_double("step", 0.25);  // explicit param beats the field
  EXPECT_DOUBLE_EQ(spec.resolved_algo_params().get_double("step", 0.0), 0.25);

  // The adaptive step follows an algo_params target override, not the field.
  ExperimentSpec overridden;
  overridden.target = 0.5;
  overridden.rounds = 20;
  overridden.sample = 0.5;
  overridden.algo_params.set_double("target", 0.9);
  EXPECT_NEAR(overridden.resolved_algo_params().get_double("step", 0.0),
              adaptive_prune_step(0.9, 20, 0.5), 1e-12);
}

TEST_F(ExperimentApi, SpecResolvesHybridChannelTarget) {
  ExperimentSpec spec;
  spec.algo = "subfedavg_hy";
  spec.target = 0.2;
  // Channels follow min(0.5, target) as the old CLI did…
  EXPECT_DOUBLE_EQ(spec.resolved_algo_params().get_double("channel_target", -1.0), 0.2);
  spec.target = 0.9;
  EXPECT_DOUBLE_EQ(spec.resolved_algo_params().get_double("channel_target", -1.0), 0.5);
  // …unless explicitly overridden, and un runs get no channel_target at all.
  spec.algo_params.set_double("channel_target", 0.3);
  EXPECT_DOUBLE_EQ(spec.resolved_algo_params().get_double("channel_target", -1.0), 0.3);
  ExperimentSpec un;
  un.algo = "subfedavg_un";
  EXPECT_FALSE(un.resolved_algo_params().has("channel_target"));
}

TEST_F(ExperimentApi, SpecSeedRoundTripsFullUint64Range) {
  std::vector<std::string> args{"--seed", "18446744073709551615"};  // UINT64_MAX
  std::vector<char*> argv = argv_of(args);
  ExperimentSpec spec;
  spec.parse_args(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(spec.seed, std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(ExperimentSpec::from_kv(spec.to_kv()).seed,
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_THROW(ExperimentSpec::from_kv("seed=1.5\n"), CheckError);
  EXPECT_THROW(ExperimentSpec::from_kv("seed=-3\n"), CheckError);
}

// --- observer hooks ---------------------------------------------------------

/// Records one tag per callback so tests can assert exact ordering.
class RecordingObserver final : public RoundObserver {
 public:
  void on_round_begin(std::size_t round, std::span<const std::size_t> sampled) override {
    EXPECT_FALSE(sampled.empty());
    events.push_back("begin" + std::to_string(round));
  }
  void on_round_end(const RoundEndInfo& info) override {
    EXPECT_FALSE(info.sampled.empty());
    round_bytes += info.round_up_bytes + info.round_down_bytes;
    events.push_back("end" + std::to_string(info.round));
  }
  void on_eval(std::size_t round, double avg_accuracy) override {
    EXPECT_GE(avg_accuracy, 0.0);
    EXPECT_LE(avg_accuracy, 1.0);
    events.push_back("eval" + std::to_string(round));
  }
  void on_run_end(const RunResult&) override { events.push_back("run_end"); }

  std::vector<std::string> events;
  std::uint64_t round_bytes = 0;
};

TEST_F(ExperimentApi, ObserverCallbackOrder) {
  auto algorithm = registry().create("fedavg", ctx());
  DriverConfig driver;
  driver.rounds = 3;
  driver.sample_rate = 0.5;
  driver.eval_every = 2;
  driver.seed = 9;

  RecordingObserver observer;
  const RunResult result = run_federation(*algorithm, driver, &observer);

  const std::vector<std::string> expected{
      "begin1", "end1", "begin2", "end2", "eval2", "begin3", "end3", "eval3", "run_end"};
  EXPECT_EQ(observer.events, expected);
  // Per-round ledger deltas sum to the run totals.
  EXPECT_EQ(observer.round_bytes, result.total_bytes());
  ASSERT_EQ(result.curve.size(), 2u);
  EXPECT_EQ(result.curve.back().round, 3u);
}

TEST_F(ExperimentApi, ObserverChainFansOutInOrder) {
  RecordingObserver first;
  RecordingObserver second;
  ObserverChain chain;
  chain.attach(&first);
  chain.attach(&second);

  auto algorithm = registry().create("standalone", ctx());
  DriverConfig driver;
  driver.rounds = 1;
  driver.sample_rate = 0.5;
  driver.seed = 9;
  run_federation(*algorithm, driver, &chain);

  const std::vector<std::string> expected{"begin1", "end1", "eval1", "run_end"};
  EXPECT_EQ(first.events, expected);
  EXPECT_EQ(second.events, expected);
}

// --- checkpointing ----------------------------------------------------------

TEST_F(ExperimentApi, GenericCheckpointRoundTripsEveryBuiltinAlgorithm) {
  DriverConfig driver;
  driver.rounds = 2;
  driver.sample_rate = 0.5;
  driver.seed = 9;

  for (const std::string& name : list_algorithms()) {
    auto original = registry().create(name, ctx());
    run_federation(*original, driver);
    const std::vector<double> expected = original->all_test_accuracies();

    const std::string path = ::testing::TempDir() + "/subfed_" + name + ".ckpt";
    save_checkpoint(*original, path);

    auto restored = registry().create(name, ctx());
    load_checkpoint(*restored, path);
    const std::vector<double> actual = restored->all_test_accuracies();
    ASSERT_EQ(actual.size(), expected.size()) << name;
    for (std::size_t k = 0; k < expected.size(); ++k) {
      EXPECT_NEAR(actual[k], expected[k], 1e-12) << name << " client " << k;
    }
  }
}

TEST_F(ExperimentApi, CheckpointRejectsAlgorithmMismatch) {
  auto fedavg = registry().create("fedavg", ctx());
  const std::string path = ::testing::TempDir() + "/subfed_mismatch.ckpt";
  save_checkpoint(*fedavg, path);
  auto standalone = registry().create("standalone", ctx());
  EXPECT_THROW(load_checkpoint(*standalone, path), CheckError);
}

TEST_F(ExperimentApi, CheckpointObserverSnapshotsEveryNRounds) {
  auto algorithm = registry().create("subfedavg_un", ctx());
  const std::string path = ::testing::TempDir() + "/subfed_observer.ckpt";
  std::filesystem::remove(path);

  CheckpointObserver observer(*algorithm, path, /*every=*/2);
  DriverConfig driver;
  driver.rounds = 5;
  driver.sample_rate = 0.5;
  driver.seed = 9;
  run_federation(*algorithm, driver, &observer);

  // Rounds 2 and 4 plus the final on_run_end snapshot.
  EXPECT_EQ(observer.snapshots_taken(), 3u);
  ASSERT_TRUE(std::filesystem::exists(path));

  // When the last round is itself a snapshot boundary, on_run_end skips the
  // redundant re-save of identical state.
  auto aligned = registry().create("fedavg", ctx());
  CheckpointObserver aligned_observer(
      *aligned, ::testing::TempDir() + "/subfed_observer_aligned.ckpt", /*every=*/2);
  driver.rounds = 4;
  run_federation(*aligned, driver, &aligned_observer);
  EXPECT_EQ(aligned_observer.snapshots_taken(), 2u);

  auto restored = registry().create("subfedavg_un", ctx());
  load_checkpoint(*restored, path);
  const std::vector<double> expected = algorithm->all_test_accuracies();
  const std::vector<double> actual = restored->all_test_accuracies();
  for (std::size_t k = 0; k < expected.size(); ++k) {
    EXPECT_NEAR(actual[k], expected[k], 1e-12);
  }
}

TEST_F(ExperimentApi, ExecuteExperimentWiresCheckpointingFromTheSpec) {
  ExperimentSpec spec;
  spec.dataset = "mnist";
  spec.clients = 4;
  spec.shard = 20;
  spec.test_per_class = 4;
  spec.rounds = 2;
  spec.epochs = 1;
  spec.sample = 0.5;
  spec.seed = 9;
  spec.algo = "fedavg";
  spec.checkpoint_every = 1;
  spec.out = ::testing::TempDir() + "/subfed_exec.json";
  std::filesystem::remove(spec.resolved_checkpoint_path());

  const ExecutedRun run = execute_experiment(spec);
  EXPECT_EQ(run.algorithm_name, "FedAvg");
  EXPECT_GT(run.result.final_avg_accuracy, 0.0);
  EXPECT_TRUE(std::filesystem::exists(spec.out));
  // checkpoint_path empty → derived from out: .json → .ckpt.
  EXPECT_EQ(spec.resolved_checkpoint_path(), ::testing::TempDir() + "/subfed_exec.ckpt");
  EXPECT_TRUE(std::filesystem::exists(spec.resolved_checkpoint_path()));

  // Sub-FedAvg runs surface their pruned fractions as metrics.
  spec.algo = "subfedavg_un";
  spec.checkpoint_every = 0;
  spec.out.clear();
  const ExecutedRun sub = execute_experiment(spec);
  EXPECT_EQ(sub.metrics.count("unstructured_pruned"), 1u);
}

TEST_F(ExperimentApi, SpecTagAndCheckpointFieldsRoundTrip) {
  ExperimentSpec spec;
  spec.tag = "paper-table-1";
  spec.checkpoint_every = 25;
  spec.checkpoint_path = "snap.ckpt";
  const ExperimentSpec restored = ExperimentSpec::from_kv(spec.to_kv());
  EXPECT_EQ(restored.tag, "paper-table-1");
  EXPECT_EQ(restored.checkpoint_every, 25u);
  EXPECT_EQ(restored.checkpoint_path, "snap.ckpt");

  EXPECT_EQ(restored.resolved_checkpoint_path(), "snap.ckpt");
  ExperimentSpec derived;
  derived.out = "results/run.json";
  EXPECT_EQ(derived.resolved_checkpoint_path(), "results/run.ckpt");
  derived.out = "results.v2/run";  // dot in a directory, not an extension
  EXPECT_EQ(derived.resolved_checkpoint_path(), "results.v2/run.ckpt");
  derived.out.clear();
  EXPECT_EQ(derived.resolved_checkpoint_path(), "checkpoint.ckpt");
}

TEST_F(ExperimentApi, SpecBackendAndRobustFieldsRoundTripAndValidate) {
  ExperimentSpec spec;
  spec.backend = "sparse";
  spec.math_threads = 3;
  spec.corrupt_fraction = 0.25;
  spec.corrupt_noise = 2.5;
  spec.robust_filter = 3.0;
  const ExperimentSpec restored = ExperimentSpec::from_kv(spec.to_kv());
  EXPECT_EQ(restored.backend, "sparse");
  EXPECT_EQ(restored.math_threads, 3u);
  EXPECT_DOUBLE_EQ(restored.corrupt_fraction, 0.25);
  EXPECT_DOUBLE_EQ(restored.corrupt_noise, 2.5);
  EXPECT_DOUBLE_EQ(restored.robust_filter, 3.0);

  // The same fields parse as flags (so they are sweep-axis reachable).
  ExperimentSpec flagged;
  std::vector<std::string> args{"--backend",          "naive", "--math-threads", "2",
                                "--corrupt-fraction", "0.5",   "--robust-filter", "4"};
  std::vector<char*> argv = argv_of(args);
  flagged.parse_args(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(flagged.backend, "naive");
  EXPECT_EQ(flagged.math_threads, 2u);
  EXPECT_DOUBLE_EQ(flagged.corrupt_fraction, 0.5);
  EXPECT_DOUBLE_EQ(flagged.robust_filter, 4.0);

  // An unknown backend fails fast when the context is built, before training.
  ExperimentSpec bogus;
  bogus.backend = "cublas";
  const FederatedData data(bogus.dataset_spec(), bogus.data_config());
  EXPECT_THROW(bogus.make_context(data), CheckError);

  // The context carries the knobs through to the algorithm: the constructor
  // applies ctx.backend to the model spec every built model uses.
  ExperimentSpec wired;
  wired.backend = "naive";
  wired.math_threads = 2;
  wired.corrupt_fraction = 0.1;
  wired.robust_filter = 3.0;
  const FederatedData wired_data(wired.dataset_spec(), wired.data_config());
  const FlContext ctx = wired.make_context(wired_data);
  EXPECT_EQ(ctx.backend, "naive");
  EXPECT_EQ(ctx.math_threads, 2u);
  EXPECT_DOUBLE_EQ(ctx.corrupt_fraction, 0.1);
  EXPECT_DOUBLE_EQ(ctx.robust_filter, 3.0);
  const std::unique_ptr<FederatedAlgorithm> algorithm = wired.make_algorithm(ctx);
  EXPECT_EQ(algorithm->context().spec.backend, "naive");
}

// --- JSON result writer -----------------------------------------------------

TEST_F(ExperimentApi, RunResultJsonContainsCurveAndBytes) {
  ExperimentSpec spec;
  spec.dataset = "mnist";
  spec.out = "with \"quotes\"";  // exercises string escaping

  RunResult result;
  result.curve = {{2, 0.5}, {4, 0.75}};
  result.final_avg_accuracy = 0.75;
  result.final_per_client = {0.5, 1.0};
  result.up_bytes = 123;
  result.down_bytes = 456;

  const std::string json = run_result_json(spec, "FedAvg", result);
  EXPECT_NE(json.find("\"algorithm\": \"FedAvg\""), std::string::npos);
  EXPECT_NE(json.find("\"curve\""), std::string::npos);
  EXPECT_NE(json.find("{\"round\": 2, \"avg_accuracy\": 0.5}"), std::string::npos);
  EXPECT_NE(json.find("\"up_bytes\": 123"), std::string::npos);
  EXPECT_NE(json.find("\"down_bytes\": 456"), std::string::npos);
  EXPECT_NE(json.find("\"total_bytes\": 579"), std::string::npos);
  EXPECT_NE(json.find("with \\\"quotes\\\""), std::string::npos);
  EXPECT_NE(json.find("\"dataset\": \"mnist\""), std::string::npos);
}

}  // namespace
}  // namespace subfed
