// Buffered (FedBuff-style) aggregation: sync equivalence with a full buffer,
// staleness weighting and eviction, arrival-order determinism, crash
// isolation, and pipe hygiene across many buffered rounds.
#include <gtest/gtest.h>

#include <dirent.h>
#include <unistd.h>

#include <cmath>
#include <string>

#include "comm/channel.h"
#include "core/aggregate.h"
#include "fl/experiment.h"
#include "fl/registry.h"
#include "nn/model_zoo.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/rng.h"

namespace subfed {
namespace {

ExperimentSpec small_spec(const std::string& algo) {
  set_log_level(LogLevel::kWarn);
  ExperimentSpec spec;
  spec.dataset = "mnist";
  spec.clients = 6;
  spec.shard = 25;
  spec.test_per_class = 8;
  spec.rounds = 3;
  spec.epochs = 1;
  spec.sample = 0.5;
  spec.eval_every = 1;
  spec.seed = 17;
  spec.algo = algo;
  return spec;
}

void expect_same_learning(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.final_avg_accuracy, b.final_avg_accuracy);
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_EQ(a.curve[i].avg_accuracy, b.curve[i].avg_accuracy);
  }
  ASSERT_EQ(a.final_per_client.size(), b.final_per_client.size());
  for (std::size_t k = 0; k < a.final_per_client.size(); ++k) {
    EXPECT_EQ(a.final_per_client[k], b.final_per_client[k]);
  }
}

// ---------------------------------------------------------------------------
// Sync equivalence

TEST(BufferedAggregation, FullBufferMatchesSyncBitIdenticallyOnMemory) {
  // buffer_k == sampled count (0 = all): nothing is ever parked, every weight
  // is 1.0, and the weighted aggregation rules degenerate to the unweighted
  // math bit-for-bit.
  for (const char* algo : {"fedavg", "subfedavg_un", "lg_fedavg"}) {
    ExperimentSpec spec = small_spec(algo);
    const ExecutedRun sync = execute_experiment(spec);
    spec.aggregation = "buffered";
    const ExecutedRun buffered = execute_experiment(spec);
    expect_same_learning(sync.result, buffered.result);
    EXPECT_EQ(sync.result.total_bytes(), buffered.result.total_bytes()) << algo;
    EXPECT_EQ(sync.result.simulated_seconds, buffered.result.simulated_seconds) << algo;
    EXPECT_EQ(buffered.metrics.at("stale_updates"), 0.0) << algo;
    EXPECT_EQ(buffered.metrics.at("parked_updates"), 0.0) << algo;
  }
}

TEST(BufferedAggregation, RunsOnEveryTransportForEveryRegistryAlgorithm) {
  for (const std::string& algo : list_algorithms()) {
    if (algo.rfind("test_", 0) == 0) continue;  // test doubles
    for (const char* transport : {"memory", "loopback", "subprocess"}) {
      ExperimentSpec spec = small_spec(algo);
      spec.rounds = 2;
      spec.transport = transport;
      spec.channel_workers = 2;
      spec.aggregation = "buffered";
      spec.buffer_k = 2;
      spec.link_spread = 4.0;
      const ExecutedRun run = execute_experiment(spec);
      if (std::string(transport) != "memory") {
        // Materializing transports charge real bytes for every algorithm;
        // the memory fast path charges standalone's empty pings as zero.
        EXPECT_GT(run.result.up_bytes, 0u) << algo << "/" << transport;
      }
      EXPECT_GE(run.metrics.at("stale_updates") + run.metrics.at("parked_updates") +
                    run.metrics.at("evicted_updates"),
                1.0)
          << algo << "/" << transport << ": 3 sampled, buffer 2 → someone waited";
    }
  }
}

// ---------------------------------------------------------------------------
// Early close and staleness

TEST(BufferedAggregation, EarlyCloseShortensSimulatedRoundsAtEqualBytes) {
  ExperimentSpec spec = small_spec("fedavg");
  spec.clients = 8;
  spec.rounds = 4;
  spec.transport = "loopback";
  spec.link_spread = 8.0;
  const ExecutedRun sync = execute_experiment(spec);
  spec.aggregation = "buffered";
  spec.buffer_k = 2;  // 4 sampled per round
  const ExecutedRun buffered = execute_experiment(spec);
  // Same traffic crossed the wire, but rounds closed at the 2nd arrival
  // instead of the 4th — simulated time must strictly drop under a straggler
  // tail.
  EXPECT_EQ(sync.result.total_bytes(), buffered.result.total_bytes());
  EXPECT_LT(buffered.result.simulated_seconds, sync.result.simulated_seconds);
  EXPECT_GT(buffered.metrics.at("stale_updates"), 0.0);
}

TEST(BufferedAggregation, StalenessWeightsFollowPolynomialDecay) {
  // Aggregating two equal-example updates with values 0 and 1: the weighted
  // mean must land exactly at w_stale / (w_fresh + w_stale).
  const double decay = 0.7;
  const std::size_t staleness = 3;
  ClientUpdate fresh, stale;
  fresh.state.add("w", Tensor(Shape{2}, {0.0f, 0.0f}));
  fresh.num_examples = 10;
  stale.state.add("w", Tensor(Shape{2}, {1.0f, 1.0f}));
  stale.num_examples = 10;
  stale.weight = std::pow(1.0 + static_cast<double>(staleness), -decay);

  const std::vector<ClientUpdate> updates{fresh, stale};
  const StateDict merged = fedavg_aggregate(updates);
  const double expected = stale.weight / (1.0 + stale.weight);
  EXPECT_NEAR((*merged.find("w"))[0], expected, 1e-6);

  // The mask-aware counting rule honors the same weights on covered entries.
  ClientUpdate masked_fresh = fresh, masked_stale = stale;
  masked_fresh.mask.set("w", Tensor(Shape{2}, {1.0f, 1.0f}));
  masked_stale.mask.set("w", Tensor(Shape{2}, {1.0f, 0.0f}));
  const StateDict previous = fresh.state;
  const std::vector<ClientUpdate> masked{masked_fresh, masked_stale};
  const StateDict sub = sub_fedavg_aggregate(masked, previous);
  EXPECT_NEAR((*sub.find("w"))[0], expected, 1e-6);  // both keep entry 0
  EXPECT_NEAR((*sub.find("w"))[1], 0.0, 1e-6);       // only fresh keeps entry 1
}

TEST(BufferedAggregation, MaxStalenessEvictsParkedUpdates) {
  ExperimentSpec spec = small_spec("fedavg");
  spec.clients = 8;
  spec.rounds = 4;
  spec.link_spread = 8.0;
  spec.aggregation = "buffered";
  spec.buffer_k = 2;  // 4 sampled per round → 2 park every round
  spec.max_staleness = 0;  // nothing may wait even one round
  const ExecutedRun run = execute_experiment(spec);
  EXPECT_EQ(run.metrics.at("stale_updates"), 0.0);
  EXPECT_GT(run.metrics.at("evicted_updates"), 0.0);
  // Conservation: every parked update either delivered late, was evicted, or
  // is still waiting — 2 parked per round for 4 rounds.
  EXPECT_EQ(run.metrics.at("stale_updates") + run.metrics.at("evicted_updates") +
                run.metrics.at("parked_updates"),
            8.0);
}

// ---------------------------------------------------------------------------
// Determinism

TEST(BufferedAggregation, LoopbackArrivalOrderIsDeterministicPerSeed) {
  // The loopback transport orders replies by each client's simulated
  // link+compute time under the seeded LinkFleet, so two identical runs must
  // park the same updates and reproduce each other bit-for-bit.
  ExperimentSpec spec = small_spec("subfedavg_un");
  spec.clients = 8;
  spec.transport = "loopback";
  spec.link_spread = 6.0;
  spec.aggregation = "buffered";
  spec.buffer_k = 2;
  const ExecutedRun a = execute_experiment(spec);
  const ExecutedRun b = execute_experiment(spec);
  expect_same_learning(a.result, b.result);
  EXPECT_EQ(a.result.simulated_seconds, b.result.simulated_seconds);
  EXPECT_EQ(a.metrics.at("stale_updates"), b.metrics.at("stale_updates"));
  EXPECT_EQ(a.metrics.at("evicted_updates"), b.metrics.at("evicted_updates"));
}

// ---------------------------------------------------------------------------
// Crash isolation

TEST(BufferedAggregation, DeadSubprocessWorkerStillFailsTheBufferedRun) {
  // Registered by tests/test_channel.cpp in its binary; register our own
  // double here (names must not collide across test binaries — same registry
  // pattern, different name would double-register only within one process).
  static const bool registered = [] {
    registry().add("test_async_crashy", "worker-killing buffered test double",
                   [](const FlContext& ctx, const AlgoParams&) {
                     class Crashy final : public FederatedAlgorithm {
                      public:
                       explicit Crashy(FlContext ctx) : FederatedAlgorithm(std::move(ctx)) {}
                       std::string name() const override { return "Crashy"; }
                       void run_round(std::size_t round,
                                      std::span<const std::size_t> sampled) override {
                         static const StateDict kEmpty;
                         std::vector<ClientJob> jobs(sampled.size());
                         for (std::size_t i = 0; i < sampled.size(); ++i) {
                           jobs[i] = {sampled[i], &kEmpty, nullptr};
                         }
                         channel_->run_round(round, jobs,
                                             [&](const ClientJob&, const StateDict&,
                                                 bool detached) {
                                               if (detached) ::_exit(7);
                                               return ClientResult{};
                                             });
                       }
                       double client_test_accuracy(std::size_t) override { return 0.0; }
                     };
                     return std::make_unique<Crashy>(ctx);
                   });
    return true;
  }();
  (void)registered;

  ExperimentSpec spec = small_spec("test_async_crashy");
  spec.rounds = 1;
  spec.transport = "subprocess";
  spec.aggregation = "buffered";
  spec.buffer_k = 1;
  EXPECT_THROW(execute_experiment(spec), CheckError);
  spec.transport = "loopback";
  EXPECT_NO_THROW(execute_experiment(spec));
}

// ---------------------------------------------------------------------------
// Pipe hygiene

std::size_t open_fd_count() {
  std::size_t count = 0;
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  while (::readdir(dir) != nullptr) ++count;
  ::closedir(dir);
  return count;
}

TEST(BufferedAggregation, SubprocessPipesDoNotLeakAcrossFiftyBufferedRounds) {
  // An early-closed buffered round must still reap every worker and close
  // both of its pipes — fd count stays flat over many rounds.
  CommLedger ledger;
  ChannelConfig config;
  config.transport = "subprocess";
  config.workers = 2;
  config.buffered = true;
  config.buffer_k = 1;
  Channel channel(config, &ledger);

  StateDict payload;
  payload.add("w", Tensor(Shape{4}, {1.0f, 2.0f, 3.0f, 4.0f}));
  const auto client_fn = [&](const ClientJob&, const StateDict& received, bool) {
    ClientResult result;
    result.update.state = received;
    result.update.num_examples = 1;
    return result;
  };
  std::vector<ClientJob> jobs(3);
  for (std::size_t i = 0; i < jobs.size(); ++i) jobs[i] = {i, &payload, nullptr};

  channel.run_round(0, jobs, client_fn);  // warm up any lazily opened fds
  const std::size_t before = open_fd_count();
  ASSERT_GT(before, 0u);
  for (std::size_t round = 1; round <= 50; ++round) {
    channel.run_round(round, jobs, client_fn);
  }
  EXPECT_EQ(open_fd_count(), before);
  EXPECT_GT(channel.stale_updates() + channel.parked_updates() +
                channel.evicted_updates(),
            0u);
}

}  // namespace
}  // namespace subfed
