// Device API: registry/aliases, execution-plan cache (incl. concurrency and
// mask-epoch invalidation), workspace leases, fused conv→bn→relu epilogues
// (bit-identical to the unfused chain), the fp16 compute mode (documented
// looser tolerance vs fp32, bit-determinism intact), and the registered
// env-knob table (asserted against the README in both directions).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fl/experiment.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/model_zoo.h"
#include "pruning/unstructured.h"
#include "tensor/backend.h"
#include "tensor/device.h"
#include "util/check.h"
#include "util/env.h"
#include "util/rng.h"

namespace subfed {
namespace {

// The pool must have several workers even on single-core CI runners or the
// fp16 math_threads determinism test would never actually fan out. Runs
// before main(), i.e. before anything touches ThreadPool::global().
const bool kPoolEnvReady = [] {
  setenv("SUBFEDAVG_THREADS", "4", /*overwrite=*/0);
  return true;
}();

std::vector<float> random_vec(Rng& rng, std::size_t n) {
  std::vector<float> out(n);
  for (auto& x : out) x = static_cast<float>(rng.normal());
  return out;
}

/// Reference result through the naive oracle.
std::vector<float> naive_nn(const std::vector<float>& a, const std::vector<float>& b,
                            std::size_t m, std::size_t k, std::size_t n) {
  std::vector<float> c(m * n, 0.0f);
  math_backend("naive").gemm_nn(a.data(), b.data(), c.data(), m, k, n, false);
  return c;
}

void expect_close(const std::vector<float>& want, const float* got, double rel,
                  const std::string& label) {
  for (std::size_t i = 0; i < want.size(); ++i) {
    const double tol = rel * (1.0 + std::fabs(want[i]));
    ASSERT_NEAR(want[i], got[i], tol) << label << " at " << i;
  }
}

// ---------------------------------------------------------------------------
// Registry and aliases

TEST(DeviceRegistry, BackendNamesAliasOntoSingletonDevices) {
  const Device& blocked = get_device("blocked");
  EXPECT_EQ(blocked.name(), "blocked");
  EXPECT_EQ(blocked.backend_name(), "blocked");
  EXPECT_EQ(blocked.compute(), ComputeDType::kFp32);
  EXPECT_EQ(&blocked, &get_device("blocked", ComputeDType::kFp32));
  EXPECT_EQ(&blocked, &get_device("blocked", std::string("fp32")));

  const Device& half = get_device("blocked", ComputeDType::kFp16);
  EXPECT_EQ(half.name(), "blocked+fp16");
  EXPECT_EQ(half.backend_name(), "blocked");
  EXPECT_NE(&half, &blocked);

  // The deprecated MathBackend seam lands on the same singletons.
  EXPECT_EQ(&device_for(math_backend("sparse")), &get_device("sparse"));
  EXPECT_EQ(&get_device("sparse").kernels(), &math_backend("sparse"));

  EXPECT_TRUE(has_device("naive"));
  EXPECT_FALSE(has_device("cublas"));

  const std::vector<std::string> names = list_devices();
  ASSERT_EQ(names.size(), 6u);
  for (const char* expected : {"blocked", "blocked+fp16", "naive", "naive+fp16",
                               "sparse", "sparse+fp16"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end()) << expected;
  }
}

TEST(DeviceRegistry, UnknownNamesFailListingTheValidOnes) {
  try {
    get_device("cublas");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("naive | blocked | sparse"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(parse_compute_dtype("fp8"), CheckError);
  EXPECT_EQ(parse_compute_dtype("fp16"), ComputeDType::kFp16);
  EXPECT_STREQ(compute_dtype_name(ComputeDType::kFp16), "fp16");
}

TEST(DeviceRegistry, SpecValidationListsDeviceAndDtypeVariants) {
  ExperimentSpec bogus;
  bogus.clients = 4;
  bogus.shards_per_client = 2;
  bogus.shard = 20;
  bogus.test_per_class = 4;
  bogus.backend = "cublas";
  const FederatedData data(bogus.dataset_spec(), bogus.data_config());
  try {
    bogus.make_context(data);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    // The message enumerates the device registry, dtype variants included.
    EXPECT_NE(what.find("blocked+fp16"), std::string::npos) << what;
    EXPECT_NE(what.find("sparse"), std::string::npos) << what;
  }

  bogus.backend = "auto";
  bogus.compute = "fp8";
  EXPECT_THROW(bogus.make_context(data), CheckError);
  bogus.compute = "fp16";
  EXPECT_EQ(bogus.make_context(data).compute, "fp16");
}

// ---------------------------------------------------------------------------
// Execution-plan cache

TEST(PlanCache, SecondCallOnAShapeIsAHit) {
  const Device& dev = get_device("blocked");
  const std::size_t m = 37, k = 53, n = 29;  // unlikely to collide with other tests
  Rng rng(11);
  const std::vector<float> a = random_vec(rng, m * k);
  const std::vector<float> b = random_vec(rng, k * n);
  std::vector<float> c(m * n);

  const DeviceStats before = dev.stats();
  dev.gemm(GemmOp::kNN, a.data(), b.data(), c.data(), m, k, n, false);
  dev.gemm(GemmOp::kNN, a.data(), b.data(), c.data(), m, k, n, false);
  const DeviceStats after = dev.stats();

  EXPECT_GE(after.plan_misses, before.plan_misses + 1);
  EXPECT_GE(after.plan_hits, before.plan_hits + 1);
  EXPECT_GE(after.plan_entries, 1u);
  expect_close(naive_nn(a, b, m, k, n), c.data(), 1e-4, "plan-cache gemm");
}

TEST(PlanCache, ConcurrentCallersShareThePlanSafely) {
  const Device& dev = get_device("blocked");
  const std::size_t m = 41, k = 67, n = 31;
  Rng rng(12);
  const std::vector<float> a = random_vec(rng, m * k);
  const std::vector<float> b = random_vec(rng, k * n);
  const std::vector<float> want = naive_nn(a, b, m, k, n);

  constexpr std::size_t kThreads = 8, kCallsPerThread = 50;
  const DeviceStats before = dev.stats();
  std::vector<std::thread> workers;
  std::vector<int> ok(kThreads, 0);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      std::vector<float> c(m * n);
      for (std::size_t i = 0; i < kCallsPerThread; ++i) {
        dev.gemm(GemmOp::kNN, a.data(), b.data(), c.data(), m, k, n, false);
      }
      for (std::size_t i = 0; i < want.size(); ++i) {
        if (std::fabs(c[i] - want[i]) > 1e-4 * (1.0 + std::fabs(want[i]))) return;
      }
      ok[t] = 1;
    });
  }
  for (auto& w : workers) w.join();
  for (std::size_t t = 0; t < kThreads; ++t) EXPECT_EQ(ok[t], 1) << "thread " << t;

  const DeviceStats after = dev.stats();
  const std::uint64_t calls = kThreads * kCallsPerThread;
  EXPECT_EQ(after.plan_hits + after.plan_misses, before.plan_hits + before.plan_misses + calls);
  // All but the racing first resolutions should hit.
  EXPECT_GE(after.plan_hits, before.plan_hits + calls - kThreads);
}

TEST(PlanCache, SparseDecisionIsCachedUntilTheMaskEpochMoves) {
  const Device& dev = get_device("sparse");
  const std::size_t m = 48, k = 64, n = 24;
  Rng rng(13);
  std::vector<float> w(m * k, 0.0f);
  for (auto& x : w) {
    if (rng.bernoulli(0.1)) x = static_cast<float>(rng.normal());
  }
  const std::vector<float> b = random_vec(rng, k * n);
  std::vector<float> c(m * n);
  const std::uint64_t uid = next_parameter_uid();

  const auto scans = [&] { return dev.stats().density_scans; };
  const std::uint64_t s0 = scans();
  dev.gemm(GemmOp::kNN, w.data(), b.data(), c.data(), m, k, n, false, WeightSide::kA, uid, 0);
  EXPECT_EQ(scans(), s0 + 1);
  expect_close(naive_nn(w, b, m, k, n), c.data(), 1e-4, "sparse planned gemm");

  // Same weight identity, same epoch: the O(weight) scan is skipped.
  dev.gemm(GemmOp::kNN, w.data(), b.data(), c.data(), m, k, n, false, WeightSide::kA, uid, 0);
  dev.gemm(GemmOp::kNN, w.data(), b.data(), c.data(), m, k, n, false, WeightSide::kA, uid, 0);
  EXPECT_EQ(scans(), s0 + 1);

  // A pruning pass bumps the epoch → exactly one rescan.
  dev.gemm(GemmOp::kNN, w.data(), b.data(), c.data(), m, k, n, false, WeightSide::kA, uid, 1);
  dev.gemm(GemmOp::kNN, w.data(), b.data(), c.data(), m, k, n, false, WeightSide::kA, uid, 1);
  EXPECT_EQ(scans(), s0 + 2);

  // Anonymous weights (uid 0) keep the legacy inspect-per-call behaviour.
  dev.gemm(GemmOp::kNN, w.data(), b.data(), c.data(), m, k, n, false, WeightSide::kA, 0, 0);
  dev.gemm(GemmOp::kNN, w.data(), b.data(), c.data(), m, k, n, false, WeightSide::kA, 0, 0);
  EXPECT_EQ(scans(), s0 + 4);
}

TEST(PlanCache, ParameterIdentityTracksPruningAndStateLoads) {
  Parameter p("w", Tensor({4, 4}), /*is_prunable=*/true);
  EXPECT_NE(p.uid, 0u);
  EXPECT_EQ(p.mask_epoch, 0u);

  // Copies are distinct tensors → fresh uid; assignment keeps identity but
  // advances the epoch (the incoming values may be masked differently).
  Parameter q = p;
  EXPECT_NE(q.uid, p.uid);
  const std::uint64_t q_uid = q.uid;
  q = p;
  EXPECT_EQ(q.uid, q_uid);
  EXPECT_EQ(q.mask_epoch, 1u);

  // Mask application bumps exactly the masked (prunable) parameters.
  Rng rng(14);
  Model model = ModelSpec::cnn5(10).build_init(rng);
  std::vector<std::uint64_t> before;
  for (Parameter* param : model.parameters()) before.push_back(param->mask_epoch);
  ModelMask mask = ModelMask::ones_like(model, MaskScope::kAllPrunable);
  mask = derive_magnitude_mask(model, mask, 0.5);
  mask.apply_to_weights(model);
  std::size_t i = 0, bumped = 0;
  for (Parameter* param : model.parameters()) {
    if (param->prunable) {
      EXPECT_EQ(param->mask_epoch, before[i] + 1) << param->name;
      ++bumped;
    } else {
      EXPECT_EQ(param->mask_epoch, before[i]) << param->name;
    }
    ++i;
  }
  EXPECT_GT(bumped, 0u);

  // load_state invalidates everything (a loaded global may be pruned).
  const StateDict snapshot = model.state();
  const std::uint64_t epoch0 = model.parameters().front()->mask_epoch;
  model.load_state(snapshot);
  EXPECT_EQ(model.parameters().front()->mask_epoch, epoch0 + 1);
}

// ---------------------------------------------------------------------------
// Workspace leases

TEST(Workspace, LeasesRecycleThroughTheDevicePool) {
  const Device& dev = get_device("naive");  // quiet pool, stats readable
  const DeviceStats before = dev.stats();
  float* first = nullptr;
  {
    WorkspaceLease lease = dev.lease(1000);
    ASSERT_TRUE(lease);
    EXPECT_GE(lease.size(), 1000u);
    first = lease.data();
    lease.data()[0] = 1.0f;  // writable
  }
  WorkspaceLease again = dev.lease(900);  // same size class (1024)
  EXPECT_EQ(again.data(), first);
  const DeviceStats after = dev.stats();
  EXPECT_EQ(after.workspace_leases, before.workspace_leases + 2);
  EXPECT_GE(after.workspace_reuses, before.workspace_reuses + 1);

  // Moves transfer ownership; reset is idempotent.
  WorkspaceLease moved = std::move(again);
  EXPECT_EQ(moved.data(), first);
  EXPECT_FALSE(again);  // NOLINT(bugprone-use-after-move)
  moved.reset();
  moved.reset();
  EXPECT_FALSE(moved);
}

// ---------------------------------------------------------------------------
// Fused epilogues

/// A model with nonzero conv biases and moved BN running stats, so the fused
/// epilogue exercises every term (bias, γ/β/mean/var, relu).
Model warmed_model(const ModelSpec& spec, std::uint64_t seed) {
  Rng rng(seed);
  Model model = spec.build_init(rng);
  Rng brng = rng.split("bias");
  for (Parameter* p : model.parameters()) {
    if (p->name.find(".bias") != std::string::npos) p->value.fill_normal(brng, 0.0f, 0.1f);
  }
  Tensor warm({4, spec.in_channels, spec.input_hw, spec.input_hw});
  warm.fill_normal(brng, 0.0f, 1.0f);
  model.forward(warm, /*train=*/true);  // move BN running stats off their init
  return model;
}

TEST(FusedEpilogue, EvalForwardIsBitIdenticalToTheUnfusedChain) {
  struct Net {
    const char* name;
    ModelSpec spec;
  };
  const Net nets[] = {{"cnn5", ModelSpec::cnn5(10)},
                      {"lenet5", ModelSpec::lenet5(10)},
                      {"cnn_deep", ModelSpec::cnn_deep(10)}};
  for (const Net& net : nets) {
    for (const char* backend : {"naive", "blocked", "sparse"}) {
      ModelSpec spec = net.spec;
      spec.backend = backend;
      Model model = warmed_model(spec, 21);
      Rng rng(22);
      Tensor batch({3, spec.in_channels, spec.input_hw, spec.input_hw});
      batch.fill_normal(rng, 0.0f, 1.0f);

      model.set_fusion(false);
      const Tensor unfused = model.forward(batch, /*train=*/false);
      model.set_fusion(true);
      const Tensor fused = model.forward(batch, /*train=*/false);

      ASSERT_EQ(unfused.shape(), fused.shape());
      EXPECT_EQ(std::memcmp(unfused.data(), fused.data(), unfused.numel() * sizeof(float)), 0)
          << net.name << " on " << backend;

      // Pruned weights route the sparse device through CSR + epilogue
      // post-pass — still bit-identical.
      if (std::string(backend) == "sparse") {
        ModelMask mask = ModelMask::ones_like(model, MaskScope::kAllPrunable);
        mask = derive_magnitude_mask(model, mask, 0.85);
        mask.apply_to_weights(model);
        model.set_fusion(false);
        const Tensor sparse_unfused = model.forward(batch, /*train=*/false);
        model.set_fusion(true);
        const Tensor sparse_fused = model.forward(batch, /*train=*/false);
        EXPECT_EQ(std::memcmp(sparse_unfused.data(), sparse_fused.data(),
                              sparse_unfused.numel() * sizeof(float)),
                  0)
            << net.name << " pruned on sparse";
      }
    }
  }
}

TEST(FusedEpilogue, BackwardAfterFusedEvalStillFailsLoudly) {
  Model model = warmed_model(ModelSpec::cnn5(10), 23);
  model.set_fusion(true);
  Rng rng(24);
  Tensor batch({2, 1, 28, 28});
  batch.fill_normal(rng, 0.0f, 1.0f);
  const Tensor out = model.forward(batch, /*train=*/false);
  Tensor grad(out.shape());
  grad.fill_normal(rng, 0.0f, 1.0f);
  EXPECT_THROW(model.backward(grad), CheckError);
}

// ---------------------------------------------------------------------------
// fp16 compute

/// Documented fp16-vs-fp32 tolerance: half precision carries ~3 decimal
/// digits, and errors compound through the depth of the net, so the
/// cross-dtype equivalence bound is 2e-2·(1+|x|) — versus 1e-4·(1+|x|) for
/// cross-backend fp32 comparisons (tests/test_backend.cpp).
constexpr double kFp16Tolerance = 2e-2;

TEST(Fp16Compute, ForwardAndBackwardTrackFp32WithinDocumentedTolerance) {
  struct Net {
    const char* name;
    ModelSpec spec;
  };
  const Net nets[] = {{"cnn5", ModelSpec::cnn5(10)},
                      {"lenet5", ModelSpec::lenet5(10)},
                      {"cnn_deep", ModelSpec::cnn_deep(10)}};
  for (const Net& net : nets) {
    ModelSpec fp32_spec = net.spec;
    fp32_spec.backend = "blocked";
    ModelSpec fp16_spec = fp32_spec;
    fp16_spec.compute = "fp16";

    Rng rng32(31), rng16(31);
    Model m32 = fp32_spec.build_init(rng32);
    Model m16 = fp16_spec.build_init(rng16);

    Rng rng(32);
    Tensor batch({4, net.spec.in_channels, net.spec.input_hw, net.spec.input_hw});
    batch.fill_normal(rng, 0.0f, 1.0f);

    const Tensor out32 = m32.forward(batch, /*train=*/true);
    const Tensor out16 = m16.forward(batch, /*train=*/true);
    ASSERT_EQ(out32.shape(), out16.shape());
    for (std::size_t i = 0; i < out32.numel(); ++i) {
      ASSERT_NEAR(out32[i], out16[i], kFp16Tolerance * (1.0 + std::fabs(out32[i])))
          << net.name << " forward at " << i;
    }

    Tensor grad(out32.shape());
    grad.fill_normal(rng, 0.0f, 1.0f);
    m32.backward(grad);
    m16.backward(grad);
    const std::vector<Parameter*> p32 = m32.parameters();
    const std::vector<Parameter*> p16 = m16.parameters();
    ASSERT_EQ(p32.size(), p16.size());
    for (std::size_t pi = 0; pi < p32.size(); ++pi) {
      // Backward is compared per tensor in relative L2, not elementwise:
      // train-mode BN centers pre-activations near zero, so half-precision
      // perturbations flip individual ReLU gates — single entries can move a
      // lot while the gradient as a whole tracks fp32. Observed errors top
      // out near 0.08 (early-layer BN shift terms); the bound is ~2× that.
      double num = 0.0, den = 0.0;
      for (std::size_t i = 0; i < p32[pi]->grad.numel(); ++i) {
        const double g32 = p32[pi]->grad[i];
        const double g16 = p16[pi]->grad[i];
        ASSERT_TRUE(std::isfinite(g16)) << net.name << " grad " << p32[pi]->name;
        num += (g32 - g16) * (g32 - g16);
        den += g32 * g32;
      }
      EXPECT_LE(std::sqrt(num), 1.5e-1 * (1.0 + std::sqrt(den)))
          << net.name << " grad " << p32[pi]->name << " relative L2";
    }
  }
}

TEST(Fp16Compute, BitDeterministicAcrossMathThreads) {
  const Device& dev = get_device("blocked", ComputeDType::kFp16);
  // Big enough to clear kMinParallelFlops, so the thread cap really changes
  // the fan-out the plan picks.
  const std::size_t m = 128, k = 128, n = 128;
  Rng rng(33);
  const std::vector<float> a = random_vec(rng, m * k);
  const std::vector<float> b = random_vec(rng, k * n);

  std::vector<float> c1(m * n), c4(m * n);
  const std::size_t prev_threads = math_threads();
  set_math_threads(1);
  dev.gemm(GemmOp::kNN, a.data(), b.data(), c1.data(), m, k, n, false);
  set_math_threads(4);
  dev.gemm(GemmOp::kNN, a.data(), b.data(), c4.data(), m, k, n, false);
  set_math_threads(prev_threads);
  EXPECT_EQ(std::memcmp(c1.data(), c4.data(), c1.size() * sizeof(float)), 0);

  // And fp16 staging preserves exact zeros, so pruned weights keep their
  // sparsity class under reduced precision.
  std::vector<float> w(m * k, 0.0f);
  std::vector<float> out(m * n, -1.0f);
  dev.gemm(GemmOp::kNN, w.data(), b.data(), out.data(), m, k, n, false);
  for (float x : out) ASSERT_EQ(x, 0.0f);
}

// ---------------------------------------------------------------------------
// Env-knob registry

TEST(EnvKnobs, AccessorsRejectUnregisteredNames) {
  EXPECT_THROW(env_int("SUBFEDAVG_NOT_A_KNOB", 1), CheckError);
  EXPECT_THROW(env_string("TOTALLY_UNKNOWN", "x"), CheckError);
  // Registered names work, test-only ones stay out of the documented set.
  EXPECT_EQ(env_string("SUBFEDAVG_BACKEND", "blocked").empty(), false);
  bool found_test_knob = false;
  for (const EnvKnob& knob : list_env_knobs()) {
    if (std::string(knob.name) == "SUBFEDAVG_TEST_ENV") {
      found_test_knob = true;
      EXPECT_FALSE(knob.documented);
    }
  }
  EXPECT_TRUE(found_test_knob);
}

std::string unescape_cell(std::string cell) {
  std::size_t pos = 0;
  while ((pos = cell.find("\\|", pos)) != std::string::npos) cell.erase(pos, 1);
  return cell;
}

TEST(EnvKnobs, ReadmeTableMatchesTheRegistryBothWays) {
  const char* repo = std::getenv("SUBFED_REPO_DIR");
  if (repo == nullptr || *repo == '\0') {
    GTEST_SKIP() << "SUBFED_REPO_DIR not set (ctest sets it; set it manually otherwise)";
  }
  std::ifstream readme(std::filesystem::path(repo) / "README.md");
  ASSERT_TRUE(readme.good());

  // Parse `| \`SUBFEDAVG_*\` | default | doc |` rows.
  struct Row {
    std::string name, fallback, doc;
  };
  std::vector<Row> rows;
  std::string line;
  while (std::getline(readme, line)) {
    if (line.rfind("| `SUBFEDAVG_", 0) != 0) continue;
    ASSERT_GE(line.size(), 4u) << line;
    std::string body = line.substr(2, line.size() - 4);  // strip "| " and " |"
    std::vector<std::string> cells;
    std::size_t start = 0;
    while (true) {
      const std::size_t sep = body.find(" | ", start);
      if (sep == std::string::npos) {
        cells.push_back(body.substr(start));
        break;
      }
      cells.push_back(body.substr(start, sep - start));
      start = sep + 3;
    }
    ASSERT_EQ(cells.size(), 3u) << line;
    Row row;
    row.name = cells[0].substr(1, cells[0].size() - 2);  // strip backticks
    row.fallback = unescape_cell(cells[1]);
    row.doc = unescape_cell(cells[2]);
    rows.push_back(row);
  }
  ASSERT_FALSE(rows.empty());

  // Every documented knob has a row with the exact default and doc string —
  // and the README has no rows the registry doesn't know about.
  std::size_t documented = 0;
  for (const EnvKnob& knob : list_env_knobs()) {
    if (!knob.documented) continue;
    ++documented;
    bool found = false;
    for (const Row& row : rows) {
      if (row.name != knob.name) continue;
      found = true;
      EXPECT_EQ(row.fallback, knob.fallback) << knob.name;
      EXPECT_EQ(row.doc, knob.doc) << knob.name;
    }
    EXPECT_TRUE(found) << knob.name << " missing from the README env table";
  }
  EXPECT_EQ(rows.size(), documented) << "README rows without a registered knob";
  for (const Row& row : rows) {
    bool known = false;
    for (const EnvKnob& knob : list_env_knobs()) {
      if (row.name == knob.name) known = true;
    }
    EXPECT_TRUE(known) << row.name << " is in the README but not util/env.cpp";
  }
}

}  // namespace
}  // namespace subfed
