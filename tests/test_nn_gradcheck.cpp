// Finite-difference gradient verification for every layer's backward pass.
//
// For a scalar loss L(θ), central differences give
//   dL/dθ_i ≈ (L(θ_i + ε) − L(θ_i − ε)) / 2ε.
// We compare against the analytic gradients on small random problems in
// double-friendly ranges. float32 storage limits precision, so tolerances are
// relative ~1e-2 with ε = 1e-2 — tight enough to catch any sign/indexing
// error while robust to rounding.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/model_zoo.h"
#include "nn/pooling.h"
#include "util/rng.h"

namespace subfed {
namespace {

constexpr float kEps = 1e-2f;
constexpr double kTol = 2e-2;  // relative; absolute floor below

// Scalar loss over a model's logits: sum of softmax-CE against fixed labels.
double loss_of(Model& model, const Tensor& input, const std::vector<std::int32_t>& labels) {
  Tensor logits = model.forward(input, /*train=*/true);
  return softmax_cross_entropy(logits, labels).loss;
}

void check_close(double analytic, double numeric, const std::string& what) {
  const double scale = std::max({std::fabs(analytic), std::fabs(numeric), 1e-2});
  EXPECT_NEAR(analytic, numeric, kTol * scale) << what;
}

// Checks d(loss)/d(param) for every prunable/affine parameter of `model`,
// sub-sampling large tensors to keep runtime bounded.
void gradcheck_model(Model& model, const Tensor& input,
                     const std::vector<std::int32_t>& labels) {
  // Analytic gradients.
  model.zero_grad();
  Tensor logits = model.forward(input, true);
  const LossResult loss = softmax_cross_entropy(logits, labels);
  model.backward(loss.grad_logits);

  Rng pick(1234);
  for (Parameter* p : model.parameters()) {
    const std::size_t n = p->value.numel();
    const std::size_t samples = std::min<std::size_t>(n, 12);
    for (std::size_t s = 0; s < samples; ++s) {
      const std::size_t i = static_cast<std::size_t>(pick.uniform_index(n));
      const float saved = p->value[i];
      p->value[i] = saved + kEps;
      const double lp = loss_of(model, input, labels);
      p->value[i] = saved - kEps;
      const double lm = loss_of(model, input, labels);
      p->value[i] = saved;
      const double numeric = (lp - lm) / (2.0 * kEps);
      check_close(p->grad[i], numeric, p->name + "[" + std::to_string(i) + "]");
    }
  }
}

TEST(GradCheck, LinearOnly) {
  Rng rng(1);
  Model m;
  auto* fc = m.add(std::make_unique<Linear>("fc", 6, 4));
  fc->init(rng);
  Tensor x({3, 6});
  x.fill_normal(rng, 0.0f, 1.0f);
  gradcheck_model(m, x, {0, 2, 3});
}

TEST(GradCheck, LinearReluStack) {
  Rng rng(2);
  Model m;
  auto* fc1 = m.add(std::make_unique<Linear>("fc1", 8, 6));
  m.add(std::make_unique<ReLU>());
  auto* fc2 = m.add(std::make_unique<Linear>("fc2", 6, 3));
  fc1->init(rng);
  fc2->init(rng);
  Tensor x({4, 8});
  x.fill_normal(rng, 0.0f, 1.0f);
  gradcheck_model(m, x, {0, 1, 2, 0});
}

TEST(GradCheck, ConvOnly) {
  Rng rng(3);
  Model m;
  auto* conv = m.add(std::make_unique<Conv2d>("conv", 2, 3, 3));
  m.add(std::make_unique<Flatten>());
  conv->init(rng);
  Tensor x({2, 2, 5, 5});
  x.fill_normal(rng, 0.0f, 1.0f);
  gradcheck_model(m, x, {10, 3});
}

TEST(GradCheck, ConvWithStrideAndPad) {
  Rng rng(4);
  Model m;
  auto* conv = m.add(std::make_unique<Conv2d>("conv", 1, 2, 3, 2, 1));
  m.add(std::make_unique<Flatten>());
  conv->init(rng);
  Tensor x({2, 1, 6, 6});
  x.fill_normal(rng, 0.0f, 1.0f);
  gradcheck_model(m, x, {5, 11});
}

TEST(GradCheck, ConvPoolRelu) {
  Rng rng(5);
  Model m;
  auto* conv = m.add(std::make_unique<Conv2d>("conv", 1, 2, 3));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<MaxPool2d>(2));
  m.add(std::make_unique<Flatten>());
  conv->init(rng);
  Tensor x({2, 1, 7, 7});
  x.fill_normal(rng, 0.0f, 1.0f);
  gradcheck_model(m, x, {1, 7});
}

TEST(GradCheck, BatchNormStack) {
  Rng rng(6);
  Model m;
  auto* conv = m.add(std::make_unique<Conv2d>("conv", 1, 3, 3));
  m.add(std::make_unique<BatchNorm2d>("bn", 3));
  m.add(std::make_unique<Flatten>());
  conv->init(rng);
  Tensor x({4, 1, 5, 5});
  x.fill_normal(rng, 0.0f, 1.0f);
  gradcheck_model(m, x, {0, 8, 3, 5});
}

// For full models coordinate-wise checks are noisy: an ε-perturbation can
// flip ReLU gates or max-pool argmaxes (kinks), so instead verify the
// directional derivative along the analytic gradient:
//   (L(θ + ε·ĝ) − L(θ − ε·ĝ)) / 2ε ≈ ‖g‖.
// A sign/indexing bug anywhere in backward makes this fail badly; kink
// crossings average out over the whole parameter vector.
void gradcheck_directional(Model& m, const Tensor& x,
                           const std::vector<std::int32_t>& labels) {
  m.zero_grad();
  Tensor logits = m.forward(x, true);
  const LossResult loss = softmax_cross_entropy(logits, labels);
  m.backward(loss.grad_logits);

  double norm_sq = 0.0;
  for (Parameter* p : m.parameters()) norm_sq += p->grad.squared_norm();
  const double norm = std::sqrt(norm_sq);
  ASSERT_GT(norm, 0.0);

  // Small enough that curvature along the gradient direction is negligible
  // even for the deeper models, large enough to stay above float32
  // cancellation noise in the loss difference.
  const float step = 3e-4f;
  auto nudge = [&](float direction) {
    for (Parameter* p : m.parameters()) {
      for (std::size_t i = 0; i < p->value.numel(); ++i) {
        p->value[i] += direction * step * static_cast<float>(p->grad[i] / norm);
      }
    }
  };
  nudge(+1.0f);
  const double lp = loss_of(m, x, labels);
  nudge(-2.0f);
  const double lm = loss_of(m, x, labels);
  nudge(+1.0f);  // restore

  const double numeric = (lp - lm) / (2.0 * step);
  EXPECT_NEAR(numeric, norm, 0.05 * norm);
}

TEST(GradCheck, FullCnn5Directional) {
  Rng rng(7);
  Model m = ModelSpec::cnn5(10).build_init(rng);
  Tensor x({3, 1, 28, 28});
  x.fill_normal(rng, 0.0f, 1.0f);
  gradcheck_directional(m, x, {0, 5, 9});
}

TEST(GradCheck, FullLeNet5Directional) {
  Rng rng(8);
  Model m = ModelSpec::lenet5(10).build_init(rng);
  Tensor x({2, 3, 32, 32});
  x.fill_normal(rng, 0.0f, 1.0f);
  gradcheck_directional(m, x, {2, 7});
}

TEST(GradCheck, FullCnnDeepDirectional) {
  Rng rng(10);
  Model m = ModelSpec::cnn_deep(10).build_init(rng);
  Tensor x({2, 3, 32, 32});
  x.fill_normal(rng, 0.0f, 1.0f);
  gradcheck_directional(m, x, {4, 9});
}

TEST(GradCheck, InputGradientOfLinear) {
  // Verify dL/dx flows correctly through backward's return value.
  Rng rng(9);
  Model m;
  auto* fc = m.add(std::make_unique<Linear>("fc", 5, 3));
  fc->init(rng);
  Tensor x({2, 5});
  x.fill_normal(rng, 0.0f, 1.0f);
  const std::vector<std::int32_t> labels{1, 2};

  m.zero_grad();
  Tensor logits = m.forward(x, true);
  LossResult loss = softmax_cross_entropy(logits, labels);
  // Model::backward discards input grads; call the layer directly.
  Tensor gx = fc->backward(loss.grad_logits);

  for (std::size_t i = 0; i < 6; ++i) {
    const float saved = x[i];
    Tensor xp = x, xm = x;
    xp[i] = saved + kEps;
    xm[i] = saved - kEps;
    const double lp = loss_of(m, xp, labels);
    const double lm = loss_of(m, xm, labels);
    check_close(gx[i], (lp - lm) / (2.0 * kEps), "x[" + std::to_string(i) + "]");
  }
}

}  // namespace
}  // namespace subfed
