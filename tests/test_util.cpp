// RNG, thread pool, env, and table utilities.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <vector>

#include "util/check.h"
#include "util/env.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace subfed {
namespace {

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitIsIndependentOfParentAdvance) {
  Rng parent(9);
  Rng child1 = parent.split("stream", 0);
  // Splitting does not consume parent state; a second split with the same
  // key yields the identical stream.
  Rng child2 = parent.split("stream", 0);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(child1(), child2());
}

TEST(Rng, SplitStreamsAreDistinct) {
  Rng parent(9);
  Rng a = parent.split("stream", 0);
  Rng b = parent.split("stream", 1);
  Rng c = parent.split("other", 0);
  EXPECT_NE(a(), b());
  EXPECT_NE(a(), c());
}

TEST(Rng, UniformRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(3.0, 7.0);
    EXPECT_GE(v, 3.0);
    EXPECT_LT(v, 7.0);
  }
}

TEST(Rng, UniformIndexCoversAll) {
  Rng rng(6);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, NormalMoments) {
  Rng rng(7);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(8);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, SampleWithoutReplacement) {
  Rng rng(9);
  const auto sample = rng.sample_without_replacement(10, 4);
  EXPECT_EQ(sample.size(), 4u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 4u);
  for (const std::size_t s : sample) EXPECT_LT(s, 10u);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), CheckError);
}

TEST(Rng, SampleAllIsPermutation) {
  Rng rng(10);
  const auto sample = rng.sample_without_replacement(5, 5);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(HashName, StableAndDistinct) {
  EXPECT_EQ(hash_name("alpha"), hash_name("alpha"));
  EXPECT_NE(hash_name("alpha"), hash_name("beta"));
  EXPECT_NE(hash_name(""), hash_name("a"));
}

TEST(ThreadPool, ParallelForRunsAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 5) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ZeroAndOneWork) {
  ThreadPool pool(3);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
  int count = 0;
  pool.parallel_for(1, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(4, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 16);
}

TEST(Env, IntDoubleStringFallbacks) {
  ::unsetenv("SUBFEDAVG_TEST_ENV");
  EXPECT_EQ(env_int("SUBFEDAVG_TEST_ENV", 42), 42);
  EXPECT_DOUBLE_EQ(env_double("SUBFEDAVG_TEST_ENV", 2.5), 2.5);
  EXPECT_EQ(env_string("SUBFEDAVG_TEST_ENV", "dflt"), "dflt");

  ::setenv("SUBFEDAVG_TEST_ENV", "17", 1);
  EXPECT_EQ(env_int("SUBFEDAVG_TEST_ENV", 42), 17);
  ::setenv("SUBFEDAVG_TEST_ENV", "3.25", 1);
  EXPECT_DOUBLE_EQ(env_double("SUBFEDAVG_TEST_ENV", 0.0), 3.25);
  ::setenv("SUBFEDAVG_TEST_ENV", "hello", 1);
  EXPECT_EQ(env_string("SUBFEDAVG_TEST_ENV", ""), "hello");
  // Unparsable int falls back.
  EXPECT_EQ(env_int("SUBFEDAVG_TEST_ENV", 5), 5);
  ::unsetenv("SUBFEDAVG_TEST_ENV");
}

TEST(Table, AlignmentAndArity) {
  TablePrinter t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name      | value |"), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(Table, CsvEscaping) {
  TablePrinter t({"a", "b"});
  t.add_row({"x,y", "quo\"te"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"quo\"\"te\""), std::string::npos);
}

TEST(Format, Helpers) {
  EXPECT_EQ(format_float(3.14159, 2), "3.14");
  EXPECT_EQ(format_percent(0.3141, 1), "31.4%");
  EXPECT_EQ(format_bytes(512), "512.00 B");
  EXPECT_EQ(format_bytes(2048), "2.00 KB");
  EXPECT_EQ(format_bytes(3.5 * 1024 * 1024), "3.50 MB");
  EXPECT_EQ(format_bytes(1.25 * 1024 * 1024 * 1024), "1.25 GB");
}

TEST(Check, ThrowsWithMessage) {
  try {
    SUBFEDAVG_CHECK(1 == 2, "custom " << 42);
    FAIL() << "expected throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("custom 42"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace subfed
