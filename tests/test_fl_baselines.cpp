// Baseline algorithms: FedAvg, FedProx, LG-FedAvg, MTL, Standalone.
// Small federations, few rounds — behavioural contracts, not benchmarks.
#include <gtest/gtest.h>

#include "fl/driver.h"
#include "fl/fedavg.h"
#include "fl/fedmtl.h"
#include "fl/lg_fedavg.h"
#include "fl/standalone.h"
#include "util/check.h"
#include "util/rng.h"

namespace subfed {
namespace {

const FederatedData& small_data() {
  static FederatedData data(DatasetSpec::mnist(), [] {
    FederatedDataConfig config;
    config.partition = {6, 2, 30};
    config.test_per_class = 8;
    config.seed = 31;
    return config;
  }());
  return data;
}

FlContext small_ctx() {
  FlContext ctx;
  ctx.data = &small_data();
  ctx.spec = ModelSpec::cnn5(10);
  ctx.train = {/*epochs=*/2, /*batch=*/10};
  ctx.seed = 31;
  return ctx;
}

std::vector<std::size_t> all_clients() { return {0, 1, 2, 3, 4, 5}; }

TEST(Standalone, NoCommunication) {
  Standalone alg(small_ctx());
  const auto sampled = all_clients();
  alg.run_round(0, sampled);
  EXPECT_EQ(alg.ledger().total(), 0u);
}

TEST(Standalone, ImprovesOwnClientsOnly) {
  Standalone alg(small_ctx());
  const double before = alg.average_test_accuracy();
  std::vector<std::size_t> sampled{0};
  for (std::size_t r = 0; r < 4; ++r) alg.run_round(r, sampled);
  // Client 0 trained; others unchanged from the initial model.
  const double after0 = alg.client_test_accuracy(0);
  EXPECT_GT(after0, 0.4);
  (void)before;
}

TEST(FedAvg, GlobalStateChangesAfterRound) {
  FedAvg alg(small_ctx());
  const StateDict before = alg.global_state();
  const auto sampled = all_clients();
  alg.run_round(0, sampled);
  const StateDict& after = alg.global_state();
  bool changed = false;
  for (std::size_t e = 0; e < before.size() && !changed; ++e) {
    changed = !(before[e].second == after[e].second);
  }
  EXPECT_TRUE(changed);
}

TEST(FedAvg, ChargesDenseTrafficBothWays) {
  FedAvg alg(small_ctx());
  Model m = small_ctx().spec.build();
  const std::size_t dense = m.state().numel() * 4;
  const auto sampled = all_clients();
  alg.run_round(0, sampled);
  EXPECT_EQ(alg.ledger().round_up(0), dense * sampled.size());
  EXPECT_EQ(alg.ledger().round_down(0), dense * sampled.size());
}

TEST(FedAvg, LearnsOverRounds) {
  FedAvg alg(small_ctx());
  DriverConfig config;
  config.rounds = 6;
  config.sample_rate = 1.0;
  config.seed = 31;
  const RunResult result = run_federation(alg, config);
  // Global model on 2-label test sets: must beat 10-class chance clearly.
  EXPECT_GT(result.final_avg_accuracy, 0.2);
}

TEST(FedProx, ProximalTermShrinksDriftFromGlobal) {
  // With huge μ the client cannot move far from the global model; with μ=0
  // it reduces to FedAvg. Compare parameter drift after one round.
  auto drift = [&](double mu) {
    FlContext ctx = small_ctx();
    std::unique_ptr<FedAvg> alg;
    if (mu == 0.0) {
      alg = std::make_unique<FedAvg>(ctx);
    } else {
      alg = std::make_unique<FedProx>(ctx, mu);
    }
    const StateDict before = alg->global_state();
    std::vector<std::size_t> sampled{0};
    alg->run_round(0, sampled);
    const StateDict& after = alg->global_state();
    double d = 0.0;
    for (std::size_t e = 0; e < before.size(); ++e) {
      Tensor diff = sub(after[e].second, before[e].second);
      d += diff.squared_norm();
    }
    return d;
  };
  const double free_drift = drift(0.0);
  const double prox_drift = drift(10.0);
  EXPECT_LT(prox_drift, free_drift);
  EXPECT_GT(prox_drift, 0.0);
}

TEST(LgFedAvg, OnlyHeadIsCommunicated) {
  LgFedAvg alg(small_ctx());
  Model m = small_ctx().spec.build();
  std::size_t head_bytes = 0;
  for (const auto& [name, tensor] : m.state()) {
    if (LgFedAvg::is_global_entry(name)) head_bytes += tensor.numel() * 4;
  }
  const auto sampled = all_clients();
  alg.run_round(0, sampled);
  EXPECT_EQ(alg.ledger().round_up(0), head_bytes * sampled.size());
  EXPECT_LT(head_bytes, m.state().numel() * 4);  // strictly smaller than dense
}

TEST(LgFedAvg, IsGlobalEntryClassifiesNames) {
  EXPECT_TRUE(LgFedAvg::is_global_entry("fc1.weight"));
  EXPECT_TRUE(LgFedAvg::is_global_entry("fc2.bias"));
  EXPECT_FALSE(LgFedAvg::is_global_entry("conv1.weight"));
  EXPECT_FALSE(LgFedAvg::is_global_entry("bn1.gamma"));
}

TEST(LgFedAvg, ConvStaysPersonal) {
  LgFedAvg alg(small_ctx());
  std::vector<std::size_t> sampled{0, 1};
  alg.run_round(0, sampled);
  // Personalized accuracy is defined for every client (untrained ones score
  // with the initial conv + aggregated head).
  for (std::size_t k = 0; k < alg.num_clients(); ++k) {
    const double acc = alg.client_test_accuracy(k);
    EXPECT_GE(acc, 0.0);
    EXPECT_LE(acc, 1.0);
  }
}

TEST(FedMtl, ChargesDoubleDenseTraffic) {
  FedMtl alg(small_ctx(), /*lambda=*/0.1);
  Model m = small_ctx().spec.build();
  const std::size_t dense = m.state().numel() * 4;
  const auto sampled = all_clients();
  alg.run_round(0, sampled);
  EXPECT_EQ(alg.ledger().round_up(0), 2 * dense * sampled.size());
  EXPECT_EQ(alg.ledger().round_down(0), 2 * dense * sampled.size());
}

TEST(FedMtl, PersonalModelsDiverge) {
  FedMtl alg(small_ctx(), 0.01);
  const auto sampled = all_clients();
  alg.run_round(0, sampled);
  // Two clients with different labels end with different personal models.
  const double a0 = alg.client_test_accuracy(0);
  const double a1 = alg.client_test_accuracy(1);
  EXPECT_GE(a0, 0.0);
  EXPECT_GE(a1, 0.0);
}

TEST(Driver, CurveAndCheckpoints) {
  Standalone alg(small_ctx());
  DriverConfig config;
  config.rounds = 4;
  config.sample_rate = 1.0;
  config.eval_every = 2;
  config.seed = 31;
  const RunResult result = run_federation(alg, config);
  // Checkpoints at rounds 2 and 4.
  ASSERT_EQ(result.curve.size(), 2u);
  EXPECT_EQ(result.curve[0].round, 2u);
  EXPECT_EQ(result.curve[1].round, 4u);
  EXPECT_EQ(result.final_per_client.size(), 6u);
}

TEST(Driver, SampleRateControlsCohortSize) {
  FedAvg alg(small_ctx());
  Model m = small_ctx().spec.build();
  const std::size_t dense = m.state().numel() * 4;
  DriverConfig config;
  config.rounds = 1;
  config.sample_rate = 0.5;  // 3 of 6 clients
  config.seed = 31;
  run_federation(alg, config);
  EXPECT_EQ(alg.ledger().round_up(0), dense * 3);
}

TEST(Driver, RoundsToReach) {
  RunResult r;
  r.curve = {{2, 0.1}, {4, 0.6}, {6, 0.8}};
  EXPECT_EQ(r.rounds_to_reach(0.5), 4u);
  EXPECT_EQ(r.rounds_to_reach(0.9), 0u);
}

TEST(Driver, ValidatesConfig) {
  Standalone alg(small_ctx());
  DriverConfig bad;
  bad.rounds = 0;
  EXPECT_THROW(run_federation(alg, bad), CheckError);
  bad.rounds = 1;
  bad.sample_rate = 0.0;
  EXPECT_THROW(run_federation(alg, bad), CheckError);
}

}  // namespace
}  // namespace subfed
