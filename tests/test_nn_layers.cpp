// Layer-level forward/backward semantics (shapes, known values, caching).
#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/model_zoo.h"
#include "nn/pooling.h"
#include "util/check.h"
#include "util/rng.h"

namespace subfed {
namespace {

TEST(Conv2d, KnownValueForward) {
  // 1x1 input channel, 3x3 image, 2x2 kernel of ones, zero bias:
  // each output = sum of the 2x2 patch.
  Conv2d conv("c", 1, 1, 2);
  conv.weight().value.fill(1.0f);
  Tensor x({1, 1, 3, 3}, std::vector<float>{1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor y = conv.forward(x, true);
  EXPECT_EQ(y.shape(), Shape({1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(y[0], 1 + 2 + 4 + 5);
  EXPECT_FLOAT_EQ(y[3], 5 + 6 + 8 + 9);
}

TEST(Conv2d, BiasBroadcasts) {
  Conv2d conv("c", 1, 2, 1);
  conv.weight().value.fill(0.0f);
  conv.bias().value[0] = 1.5f;
  conv.bias().value[1] = -2.0f;
  Tensor x({1, 1, 2, 2}, 7.0f);
  Tensor y = conv.forward(x, true);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 1, 1), 1.5f);
  EXPECT_FLOAT_EQ(y.at4(0, 1, 0, 0), -2.0f);
}

TEST(Conv2d, StrideAndPadGeometry) {
  Conv2d conv("c", 3, 4, 3, 2, 1);
  Tensor x({2, 3, 8, 8});
  Tensor y = conv.forward(x, true);
  EXPECT_EQ(y.shape(), Shape({2, 4, 4, 4}));
}

TEST(Conv2d, InputChannelMismatchThrows) {
  Conv2d conv("c", 3, 4, 3);
  Tensor x({1, 2, 8, 8});
  EXPECT_THROW(conv.forward(x, true), CheckError);
}

TEST(Conv2d, BackwardBeforeForwardThrows) {
  Conv2d conv("c", 1, 1, 1);
  Tensor g({1, 1, 1, 1});
  EXPECT_THROW(conv.backward(g), CheckError);
}

TEST(Linear, KnownValueForward) {
  Linear fc("f", 3, 2);
  // W = [[1,2,3],[4,5,6]], b = [10, 20], x = [1,1,1]
  fc.weight().value = Tensor({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  fc.bias().value = Tensor({2}, std::vector<float>{10, 20});
  Tensor x({1, 3}, std::vector<float>{1, 1, 1});
  Tensor y = fc.forward(x, true);
  EXPECT_FLOAT_EQ(y.at2(0, 0), 16.0f);
  EXPECT_FLOAT_EQ(y.at2(0, 1), 35.0f);
}

TEST(Linear, BackwardShapesAndGradAccumulation) {
  Linear fc("f", 3, 2);
  Rng rng(1);
  fc.init(rng);
  Tensor x({4, 3});
  x.fill_normal(rng, 0.0f, 1.0f);
  fc.forward(x, true);
  Tensor g({4, 2}, 1.0f);
  Tensor gx = fc.backward(g);
  EXPECT_EQ(gx.shape(), Shape({4, 3}));
  // db = column sums of g = batch size each.
  EXPECT_FLOAT_EQ(fc.bias().grad[0], 4.0f);
  // Second backward accumulates.
  fc.forward(x, true);
  fc.backward(g);
  EXPECT_FLOAT_EQ(fc.bias().grad[0], 8.0f);
}

TEST(ReLU, ForwardZeroesNegatives) {
  ReLU relu;
  Tensor x({1, 4}, std::vector<float>{-1.0f, 0.0f, 2.0f, -0.5f});
  Tensor y = relu.forward(x, true);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
  EXPECT_FLOAT_EQ(y[3], 0.0f);
}

TEST(ReLU, BackwardGatesGradient) {
  ReLU relu;
  Tensor x({1, 3}, std::vector<float>{-1.0f, 1.0f, 3.0f});
  relu.forward(x, true);
  Tensor g({1, 3}, std::vector<float>{5.0f, 6.0f, 7.0f});
  Tensor gx = relu.backward(g);
  EXPECT_FLOAT_EQ(gx[0], 0.0f);
  EXPECT_FLOAT_EQ(gx[1], 6.0f);
  EXPECT_FLOAT_EQ(gx[2], 7.0f);
}

TEST(MaxPool2d, ForwardPicksMaxAndBackwardRoutes) {
  MaxPool2d pool(2);
  Tensor x({1, 1, 2, 2}, std::vector<float>{1, 9, 3, 4});
  Tensor y = pool.forward(x, true);
  EXPECT_EQ(y.shape(), Shape({1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(y[0], 9.0f);
  Tensor g({1, 1, 1, 1}, 2.5f);
  Tensor gx = pool.backward(g);
  EXPECT_FLOAT_EQ(gx[0], 0.0f);
  EXPECT_FLOAT_EQ(gx[1], 2.5f);  // gradient routed to the argmax only
  EXPECT_FLOAT_EQ(gx[2], 0.0f);
}

TEST(MaxPool2d, TruncatesOddSpatial) {
  MaxPool2d pool(2);
  Tensor x({1, 1, 5, 5});
  Tensor y = pool.forward(x, true);
  EXPECT_EQ(y.shape(), Shape({1, 1, 2, 2}));
}

TEST(Flatten, RoundTrip) {
  Flatten flat;
  Tensor x({2, 3, 4, 4});
  Tensor y = flat.forward(x, true);
  EXPECT_EQ(y.shape(), Shape({2, 48}));
  Tensor g({2, 48}, 1.0f);
  EXPECT_EQ(flat.backward(g).shape(), x.shape());
}

TEST(BatchNorm2d, NormalizesBatchStatistics) {
  BatchNorm2d bn("bn", 2);
  Rng rng(3);
  Tensor x({8, 2, 4, 4});
  x.fill_normal(rng, 5.0f, 3.0f);
  Tensor y = bn.forward(x, /*train=*/true);

  // Per-channel output mean ~0, var ~1 under γ=1, β=0.
  const std::size_t spatial = 16;
  for (std::size_t c = 0; c < 2; ++c) {
    double mean = 0.0, var = 0.0;
    for (std::size_t n = 0; n < 8; ++n) {
      for (std::size_t s = 0; s < spatial; ++s) mean += y.at4(n, c, s / 4, s % 4);
    }
    mean /= 8 * spatial;
    for (std::size_t n = 0; n < 8; ++n) {
      for (std::size_t s = 0; s < spatial; ++s) {
        const double d = y.at4(n, c, s / 4, s % 4) - mean;
        var += d * d;
      }
    }
    var /= 8 * spatial;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm2d, RunningStatsConvergeTowardBatchStats) {
  BatchNorm2d bn("bn", 1, /*momentum=*/0.5f);
  Tensor x({4, 1, 2, 2}, 10.0f);
  // Constant input: batch mean = 10, var = 0.
  bn.forward(x, true);
  auto buffers = bn.buffers();
  EXPECT_NEAR(buffers[0]->value[0], 5.0f, 1e-5);   // 0.5·0 + 0.5·10
  EXPECT_NEAR(buffers[1]->value[0], 0.5f, 1e-5);   // 0.5·1 + 0.5·0
  bn.forward(x, true);
  EXPECT_NEAR(buffers[0]->value[0], 7.5f, 1e-5);
}

TEST(BatchNorm2d, EvalModeUsesRunningStats) {
  BatchNorm2d bn("bn", 1);
  auto buffers = bn.buffers();
  buffers[0]->value[0] = 2.0f;  // running mean
  buffers[1]->value[0] = 4.0f;  // running var
  Tensor x({1, 1, 1, 2}, std::vector<float>{2.0f, 6.0f});
  Tensor y = bn.forward(x, /*train=*/false);
  EXPECT_NEAR(y[0], 0.0f, 1e-3);
  EXPECT_NEAR(y[1], 2.0f, 1e-3);  // (6-2)/sqrt(4) = 2
}

TEST(BatchNorm2d, BackwardRequiresTrainForward) {
  BatchNorm2d bn("bn", 1);
  Tensor x({1, 1, 2, 2});
  bn.forward(x, /*train=*/false);
  EXPECT_THROW(bn.backward(x), CheckError);
}

TEST(BatchNorm2d, L1PenaltyPushesGammaGradient) {
  BatchNorm2d bn("bn", 1);
  bn.set_l1_gamma(0.1f);
  Tensor x({2, 1, 2, 2});
  Rng rng(5);
  x.fill_normal(rng, 0.0f, 1.0f);
  bn.forward(x, true);
  Tensor g(x.shape());  // zero upstream gradient isolates the penalty
  bn.backward(g);
  EXPECT_NEAR(bn.gamma().grad[0], 0.1f, 1e-6);  // sign(γ=1)·0.1
}

TEST(Softmax, RowsSumToOne) {
  Tensor logits({2, 5});
  Rng rng(6);
  logits.fill_normal(rng, 0.0f, 3.0f);
  Tensor p = softmax(logits);
  for (std::size_t n = 0; n < 2; ++n) {
    double sum = 0.0;
    for (std::size_t c = 0; c < 5; ++c) sum += p.at2(n, c);
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Softmax, NumericallyStableWithHugeLogits) {
  Tensor logits({1, 3}, std::vector<float>{1000.0f, 1001.0f, 999.0f});
  Tensor p = softmax(logits);
  EXPECT_TRUE(std::isfinite(p[0]));
  EXPECT_GT(p[1], p[0]);
}

TEST(CrossEntropy, KnownValue) {
  // Uniform logits over 4 classes → loss = ln 4.
  Tensor logits({1, 4}, 0.0f);
  std::vector<std::int32_t> labels{2};
  const LossResult r = softmax_cross_entropy(logits, labels);
  EXPECT_NEAR(r.loss, std::log(4.0), 1e-5);
  // Gradient = (p − onehot)/N.
  EXPECT_NEAR(r.grad_logits.at2(0, 2), 0.25f - 1.0f, 1e-5);
  EXPECT_NEAR(r.grad_logits.at2(0, 0), 0.25f, 1e-5);
}

TEST(CrossEntropy, CountsCorrectPredictions) {
  Tensor logits({2, 3}, std::vector<float>{5, 0, 0, 0, 0, 5});
  std::vector<std::int32_t> labels{0, 1};
  const LossResult r = softmax_cross_entropy(logits, labels);
  EXPECT_EQ(r.correct, 1u);
}

TEST(CrossEntropy, RejectsBadLabels) {
  Tensor logits({1, 3});
  std::vector<std::int32_t> labels{3};
  EXPECT_THROW(softmax_cross_entropy(logits, labels), CheckError);
}

TEST(ModelZoo, Cnn5ParameterCountMatchesArchitecture) {
  Model m = ModelSpec::cnn5(10).build();
  // conv1: 1·10·25+10, conv2: 10·20·25+20, bn: 2·10+2·20,
  // fc1: 320·50+50, fc2: 50·10+10.
  const std::size_t expected = (250 + 10) + (5000 + 20) + (20 + 40) + (16000 + 50) + (500 + 10);
  EXPECT_EQ(m.num_parameters(), expected);
  EXPECT_EQ(m.topology().conv_blocks.size(), 2u);
  EXPECT_EQ(m.topology().fc_layers.size(), 2u);
}

TEST(ModelZoo, LeNet5ParameterCountMatchesPaper) {
  Model m = ModelSpec::lenet5(10).build();
  // Paper: "62000 total parameters" — exact: 62 006 with BN affine terms.
  const std::size_t expected = (3 * 6 * 25 + 6) + (6 * 16 * 25 + 16) + (12 + 32) +
                               (400 * 120 + 120) + (120 * 84 + 84) + (84 * 10 + 10);
  EXPECT_EQ(m.num_parameters(), expected);
  EXPECT_NEAR(static_cast<double>(m.num_parameters()), 62000.0, 100.0);
}

TEST(ModelZoo, ForwardShapes) {
  Rng rng(7);
  Model cnn = ModelSpec::cnn5(47).build_init(rng);
  Tensor x({3, 1, 28, 28});
  EXPECT_EQ(cnn.forward(x, false).shape(), Shape({3, 47}));

  Model lenet = ModelSpec::lenet5(100).build_init(rng);
  Tensor y({2, 3, 32, 32});
  EXPECT_EQ(lenet.forward(y, false).shape(), Shape({2, 100}));
}

TEST(Model, StateRoundTrip) {
  Rng rng(8);
  Model a = ModelSpec::cnn5(10).build_init(rng);
  Model b = ModelSpec::cnn5(10).build();
  b.load_state(a.state());

  Tensor x({2, 1, 28, 28});
  x.fill_normal(rng, 0.0f, 1.0f);
  Tensor ya = a.forward(x, false);
  Tensor yb = b.forward(x, false);
  for (std::size_t i = 0; i < ya.numel(); ++i) EXPECT_FLOAT_EQ(ya[i], yb[i]);
}

TEST(Model, LoadStateValidatesNamesAndShapes) {
  Model a = ModelSpec::cnn5(10).build();
  Model b = ModelSpec::lenet5(10).build();
  EXPECT_THROW(a.load_state(b.state()), CheckError);
}

TEST(Model, StateIncludesBuffers) {
  Model m = ModelSpec::cnn5(10).build();
  const StateDict s = m.state();
  EXPECT_NE(s.find("bn1.running_mean"), nullptr);
  EXPECT_NE(s.find("bn1.gamma"), nullptr);
  EXPECT_NE(s.find("conv2.weight"), nullptr);
  EXPECT_EQ(s.find("nonexistent"), nullptr);
}

TEST(Model, ZeroGradClearsAll) {
  Rng rng(9);
  Model m = ModelSpec::cnn5(10).build_init(rng);
  Tensor x({2, 1, 28, 28});
  x.fill_normal(rng, 0.0f, 1.0f);
  Tensor logits = m.forward(x, true);
  std::vector<std::int32_t> labels{0, 1};
  const LossResult loss = softmax_cross_entropy(logits, labels);
  m.backward(loss.grad_logits);

  double grad_norm = 0.0;
  for (Parameter* p : m.parameters()) grad_norm += p->grad.squared_norm();
  EXPECT_GT(grad_norm, 0.0);
  m.zero_grad();
  for (Parameter* p : m.parameters()) EXPECT_EQ(p->grad.squared_norm(), 0.0);
}

}  // namespace
}  // namespace subfed
