// Channel-level pruning: BN-|γ| selection, mask expansion with downstream
// propagation, and functional equivalence (a pruned channel is truly dead).
#include <gtest/gtest.h>

#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/model_zoo.h"
#include "pruning/structured.h"
#include "util/rng.h"

namespace subfed {
namespace {

Model make_lenet(std::uint64_t seed = 1) {
  Rng rng(seed);
  return ModelSpec::lenet5(10).build_init(rng);
}

TEST(ChannelMask, OnesLikeMatchesTopology) {
  Model m = make_lenet();
  ChannelMask mask = ChannelMask::ones_like(m);
  EXPECT_EQ(mask.num_blocks(), 2u);
  EXPECT_EQ(mask.block(0).size(), 6u);
  EXPECT_EQ(mask.block(1).size(), 16u);
  EXPECT_EQ(mask.total_channels(), 22u);
  EXPECT_EQ(mask.kept_channels(), 22u);
  EXPECT_EQ(mask.pruned_fraction(), 0.0);
}

TEST(ChannelMask, HammingDistance) {
  Model m = make_lenet();
  ChannelMask a = ChannelMask::ones_like(m);
  ChannelMask b = a;
  EXPECT_EQ(ChannelMask::hamming_distance(a, b), 0.0);
  b.block(0)[2] = 0;
  b.block(1)[7] = 0;
  EXPECT_NEAR(ChannelMask::hamming_distance(a, b), 2.0 / 22.0, 1e-12);
}

TEST(DeriveChannelMask, PrunesSmallestGamma) {
  Model m = make_lenet();
  // Make γ values explicit: block 0 gets large γ, block 1 small ascending.
  BatchNorm2d* bn1 = m.topology().conv_blocks[0].bn;
  BatchNorm2d* bn2 = m.topology().conv_blocks[1].bn;
  for (std::size_t c = 0; c < 6; ++c) bn1->gamma().value[c] = 10.0f + c;
  for (std::size_t c = 0; c < 16; ++c) bn2->gamma().value[c] = 0.1f * (c + 1);

  ChannelMask ones = ChannelMask::ones_like(m);
  // Prune 25% of 22 = 5 channels → the 5 smallest |γ| all live in block 1.
  ChannelMask pruned = derive_channel_mask(m, ones, 0.25);
  EXPECT_EQ(pruned.kept_channels(), 17u);
  for (std::size_t c = 0; c < 5; ++c) EXPECT_EQ(pruned.block(1)[c], 0);
  EXPECT_EQ(pruned.block(1)[5], 1);
  for (std::size_t c = 0; c < 6; ++c) EXPECT_EQ(pruned.block(0)[c], 1);
}

TEST(DeriveChannelMask, GlobalPercentileAcrossLayers) {
  Model m = make_lenet();
  BatchNorm2d* bn1 = m.topology().conv_blocks[0].bn;
  BatchNorm2d* bn2 = m.topology().conv_blocks[1].bn;
  // Interleave importance so pruning takes from both blocks.
  for (std::size_t c = 0; c < 6; ++c) bn1->gamma().value[c] = 0.05f * (c + 1);
  for (std::size_t c = 0; c < 16; ++c) bn2->gamma().value[c] = 0.04f * (c + 1);

  ChannelMask pruned = derive_channel_mask(m, ChannelMask::ones_like(m), 0.3);
  std::size_t pruned0 = 0, pruned1 = 0;
  for (const auto k : pruned.block(0)) pruned0 += (k == 0);
  for (const auto k : pruned.block(1)) pruned1 += (k == 0);
  EXPECT_GT(pruned0, 0u);
  EXPECT_GT(pruned1, 0u);
  EXPECT_EQ(pruned0 + pruned1, 6u);  // floor(0.3 · 22)
}

TEST(DeriveChannelMask, KeepsAtLeastOneChannelPerBlock) {
  Model m = make_lenet();
  ChannelMask pruned = derive_channel_mask(m, ChannelMask::ones_like(m), 0.95);
  std::size_t kept0 = 0, kept1 = 0;
  for (const auto k : pruned.block(0)) kept0 += (k != 0);
  for (const auto k : pruned.block(1)) kept1 += (k != 0);
  EXPECT_GE(kept0, 1u);
  EXPECT_GE(kept1, 1u);
}

TEST(DeriveChannelMask, MonotoneNoRevival) {
  Model m = make_lenet();
  ChannelMask first = derive_channel_mask(m, ChannelMask::ones_like(m), 0.2);
  // Re-randomize γ then prune further.
  Rng rng(9);
  for (const ConvBlock& block : m.topology().conv_blocks) {
    block.bn->gamma().value.fill_normal(rng, 0.0f, 1.0f);
  }
  ChannelMask second = derive_channel_mask(m, first, 0.5);
  for (std::size_t b = 0; b < first.num_blocks(); ++b) {
    for (std::size_t c = 0; c < first.block(b).size(); ++c) {
      if (first.block(b)[c] == 0) EXPECT_EQ(second.block(b)[c], 0);
    }
  }
}

TEST(ToModelMask, CoversConvBnAndDownstream) {
  Model m = make_lenet();
  ChannelMask mask = ChannelMask::ones_like(m);
  mask.block(0)[3] = 0;  // prune conv1 channel 3
  ModelMask expanded = mask.to_model_mask(m);

  // conv1 filter 3 fully zeroed.
  const Tensor& w1 = *expanded.find("conv1.weight");
  const std::size_t filter1 = 3 * 5 * 5;
  for (std::size_t i = 0; i < filter1; ++i) EXPECT_EQ(w1[3 * filter1 + i], 0.0f);
  for (std::size_t i = 0; i < filter1; ++i) EXPECT_EQ(w1[2 * filter1 + i], 1.0f);
  // BN affine zeroed.
  EXPECT_EQ((*expanded.find("bn1.gamma"))[3], 0.0f);
  EXPECT_EQ((*expanded.find("bn1.beta"))[3], 0.0f);
  EXPECT_EQ((*expanded.find("bn1.gamma"))[2], 1.0f);
  // conv2 input plane 3 zeroed for every filter.
  const Tensor& w2 = *expanded.find("conv2.weight");
  const std::size_t k2 = 25, in_stride = 6 * k2;
  for (std::size_t f = 0; f < 16; ++f) {
    for (std::size_t i = 0; i < k2; ++i) EXPECT_EQ(w2[f * in_stride + 3 * k2 + i], 0.0f);
    EXPECT_EQ(w2[f * in_stride + 2 * k2], 1.0f);
  }
  // conv1.bias zeroed at channel 3.
  EXPECT_EQ((*expanded.find("conv1.bias"))[3], 0.0f);
}

TEST(ToModelMask, LastConvPropagatesIntoFcColumns) {
  Model m = make_lenet();
  ChannelMask mask = ChannelMask::ones_like(m);
  mask.block(1)[5] = 0;  // prune conv2 channel 5 (feeds fc1 via flatten)
  ModelMask expanded = mask.to_model_mask(m);

  const Tensor& fc1 = *expanded.find("fc1.weight");
  const std::size_t spatial = 25;  // 5×5 after conv2+pool
  for (std::size_t row = 0; row < 120; ++row) {
    for (std::size_t s = 0; s < spatial; ++s) {
      EXPECT_EQ(fc1[row * 400 + 5 * spatial + s], 0.0f);
    }
    EXPECT_EQ(fc1[row * 400 + 4 * spatial], 1.0f);
  }
}

TEST(ApplyChannelMask, PrunedChannelIsFunctionallyDead) {
  // After applying the mask, the model output must be invariant to the
  // pruned channel's would-be activations: perturbing conv1 filter 0's
  // weights must not change the logits (they're zeroed), and the masked
  // model must produce identical logits to a model where that channel's
  // activation is forced to zero.
  Model m = make_lenet(3);
  ChannelMask mask = ChannelMask::ones_like(m);
  mask.block(0)[0] = 0;
  apply_channel_mask(m, mask);

  Rng rng(4);
  Tensor x({2, 3, 32, 32});
  x.fill_normal(rng, 0.0f, 1.0f);
  Tensor before = m.forward(x, /*train=*/false);

  // Tamper with the pruned filter's (already-zero) region via BN running
  // stats of channel 0 — output must be unchanged because γ=β=0.
  BatchNorm2d* bn1 = m.topology().conv_blocks[0].bn;
  bn1->buffers()[0]->value[0] = 123.0f;
  Tensor after = m.forward(x, /*train=*/false);
  for (std::size_t i = 0; i < before.numel(); ++i) EXPECT_FLOAT_EQ(before[i], after[i]);
}

TEST(ApplyChannelMask, EquivalentToExpandedModelMask) {
  Model a = make_lenet(5);
  Model b = make_lenet(5);
  ChannelMask mask = ChannelMask::ones_like(a);
  mask.block(0)[1] = 0;
  mask.block(1)[9] = 0;

  apply_channel_mask(a, mask);
  mask.to_model_mask(b).apply_to_weights(b);

  const StateDict sa = a.state(), sb = b.state();
  for (std::size_t e = 0; e < sa.size(); ++e) {
    EXPECT_EQ(sa[e].second, sb[e].second) << sa[e].first;
  }
}

}  // namespace
}  // namespace subfed
