// Channel API: envelopes, codec stack, transport equivalence, crash
// isolation, and the driver's simulated round time.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>

#include "comm/channel.h"
#include "comm/serialize.h"
#include "fl/experiment.h"
#include "fl/registry.h"
#include "fl/sweep.h"
#include "nn/model_zoo.h"
#include "pruning/unstructured.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/rng.h"

namespace subfed {
namespace {

StateDict sample_state(std::uint64_t seed = 1) {
  Rng rng(seed);
  Model m = ModelSpec::cnn5(10).build_init(rng);
  return m.state();
}

ModelMask sample_mask(Model& model, double rate) {
  ModelMask mask = ModelMask::ones_like(model, MaskScope::kAllPrunable);
  return derive_magnitude_mask(model, mask, rate);
}

// ---------------------------------------------------------------------------
// Envelopes

TEST(Envelope, RoundTripsHeaderAndSections) {
  Envelope envelope;
  envelope.kind = MessageKind::kClientUpdate;
  envelope.round = 7;
  envelope.client = 13;
  envelope.num_examples = 120;
  envelope.quantize = QuantCodec::kInt8;
  envelope.delta = true;
  envelope.sections.push_back({1, 2, 3});
  envelope.sections.push_back({});  // empty side-band section survives
  envelope.sections.push_back({0xFF});

  const Envelope decoded = decode_envelope(encode_envelope(envelope));
  EXPECT_EQ(decoded.kind, MessageKind::kClientUpdate);
  EXPECT_EQ(decoded.round, 7u);
  EXPECT_EQ(decoded.client, 13u);
  EXPECT_EQ(decoded.num_examples, 120u);
  EXPECT_EQ(decoded.quantize, QuantCodec::kInt8);
  EXPECT_TRUE(decoded.delta);
  ASSERT_EQ(decoded.sections.size(), 3u);
  EXPECT_EQ(decoded.sections[0], envelope.sections[0]);
  EXPECT_TRUE(decoded.sections[1].empty());
  EXPECT_EQ(decoded.sections[2], envelope.sections[2]);
}

TEST(Envelope, RejectsGarbage) {
  Envelope envelope;
  envelope.sections.push_back({1, 2, 3});
  std::vector<std::uint8_t> bytes = encode_envelope(envelope);
  bytes[0] ^= 0xFF;
  EXPECT_THROW(decode_envelope(bytes), CheckError);

  std::vector<std::uint8_t> truncated = encode_envelope(envelope);
  truncated.resize(truncated.size() - 2);
  EXPECT_THROW(decode_envelope(truncated), CheckError);
}

// ---------------------------------------------------------------------------
// Payload codec

TEST(PayloadCodec, NoneIsBitExactSerializeFormat) {
  const StateDict state = sample_state();
  EXPECT_EQ(encode_payload(state, nullptr, QuantCodec::kNone),
            encode_update(state, nullptr));
  const StateDict decoded = decode_payload(encode_payload(state, nullptr, QuantCodec::kNone));
  for (std::size_t e = 0; e < state.size(); ++e) {
    EXPECT_EQ(decoded[e].second, state[e].second);
  }
}

TEST(PayloadCodec, Fp16RoundTripsWithinHalfPrecision) {
  const StateDict state = sample_state(2);
  const StateDict decoded = decode_payload(encode_payload(state, nullptr, QuantCodec::kFp16));
  ASSERT_EQ(decoded.size(), state.size());
  for (std::size_t e = 0; e < state.size(); ++e) {
    const Tensor& a = state[e].second;
    const Tensor& b = decoded[e].second;
    for (std::size_t i = 0; i < a.numel(); ++i) {
      // Half precision: ~2^-11 relative error.
      EXPECT_NEAR(b[i], a[i], std::fabs(a[i]) * 1e-3 + 1e-6) << state[e].first;
    }
  }
}

TEST(PayloadCodec, Int8RoundTripsWithinScaleStep) {
  const StateDict state = sample_state(3);
  const StateDict decoded = decode_payload(encode_payload(state, nullptr, QuantCodec::kInt8));
  for (std::size_t e = 0; e < state.size(); ++e) {
    const Tensor& a = state[e].second;
    const Tensor& b = decoded[e].second;
    float peak = 0.0f;
    for (std::size_t i = 0; i < a.numel(); ++i) peak = std::max(peak, std::fabs(a[i]));
    const float step = peak / 127.0f;
    for (std::size_t i = 0; i < a.numel(); ++i) {
      EXPECT_NEAR(b[i], a[i], step * 0.51f + 1e-7f) << state[e].first;
    }
  }
}

TEST(PayloadCodec, MaskedQuantizedPayloadRecoversMaskAndZeros) {
  Rng rng(4);
  Model model = ModelSpec::cnn5(10).build_init(rng);
  const ModelMask mask = sample_mask(model, 0.6);
  mask.apply_to_weights(model);
  const StateDict state = model.state();

  for (const QuantCodec codec : {QuantCodec::kFp16, QuantCodec::kInt8}) {
    ModelMask recovered;
    const StateDict decoded =
        decode_payload(encode_payload(state, &mask, codec), &recovered);
    ASSERT_EQ(recovered.num_entries(), mask.num_entries());
    for (const auto& [name, bits] : mask) {
      const Tensor* r = recovered.find(name);
      ASSERT_NE(r, nullptr) << name;
      EXPECT_EQ(*r, bits) << name;
      const Tensor* d = decoded.find(name);
      ASSERT_NE(d, nullptr);
      for (std::size_t i = 0; i < bits.numel(); ++i) {
        if (bits[i] == 0.0f) EXPECT_EQ((*d)[i], 0.0f) << name << "[" << i << "]";
      }
    }
  }
}

TEST(PayloadCodec, QuantizedMaskedSmallerThanFp32Masked) {
  Rng rng(5);
  Model model = ModelSpec::lenet5(10).build_init(rng);
  const ModelMask mask = sample_mask(model, 0.5);
  const StateDict state = model.state();
  const std::size_t fp32 = encode_payload(state, &mask, QuantCodec::kNone).size();
  const std::size_t fp16 = encode_payload(state, &mask, QuantCodec::kFp16).size();
  const std::size_t int8 = encode_payload(state, &mask, QuantCodec::kInt8).size();
  EXPECT_LT(fp16, fp32);
  EXPECT_LT(int8, fp16);
}

TEST(PayloadCodec, DeltaReferenceRoundTripsExactly) {
  Rng rng(6);
  Model model = ModelSpec::cnn5(10).build_init(rng);
  const ModelMask mask = sample_mask(model, 0.4);
  mask.apply_to_weights(model);
  StateDict state = model.state();
  const StateDict original = state;
  const StateDict reference = sample_state(7);

  subtract_reference(state, &mask, reference);
  apply_reference(state, &mask, reference);
  for (std::size_t e = 0; e < original.size(); ++e) {
    const Tensor& a = original[e].second;
    const Tensor& b = state[e].second;
    for (std::size_t i = 0; i < a.numel(); ++i) {
      EXPECT_NEAR(b[i], a[i], 1e-6f) << original[e].first;
    }
  }
  // Masked-out positions were never touched (still exact zeros).
  for (const auto& [name, bits] : mask) {
    const Tensor* t = state.find(name);
    for (std::size_t i = 0; i < bits.numel(); ++i) {
      if (bits[i] == 0.0f) EXPECT_EQ((*t)[i], 0.0f);
    }
  }
}

TEST(Serialize, DecodeRecoversUploadedMask) {
  Rng rng(8);
  Model model = ModelSpec::cnn5(10).build_init(rng);
  const ModelMask mask = sample_mask(model, 0.5);
  const StateDict state = model.state();

  ModelMask recovered;
  decode_update(encode_update(state, &mask), &recovered);
  ASSERT_EQ(recovered.num_entries(), mask.num_entries());
  for (const auto& [name, bits] : mask) {
    const Tensor* r = recovered.find(name);
    ASSERT_NE(r, nullptr) << name;
    EXPECT_EQ(*r, bits) << name;
  }
}

// ---------------------------------------------------------------------------
// Channel configuration

TEST(ChannelConfig, MemoryTransportRejectsLossyCodecs) {
  CommLedger ledger;
  ChannelConfig config;
  config.transport = "memory";
  config.quantize = QuantCodec::kFp16;
  EXPECT_THROW(Channel(config, &ledger), CheckError);
  config.quantize = QuantCodec::kNone;
  config.delta = true;
  EXPECT_THROW(Channel(config, &ledger), CheckError);
  config.delta = false;
  EXPECT_NO_THROW(Channel(config, &ledger));
  config.transport = "carrier-pigeon";
  EXPECT_THROW(Channel(config, &ledger), CheckError);
}

TEST(ChannelConfig, SpecValidationHappensBeforeTraining) {
  ExperimentSpec spec;
  spec.transport = "memory";
  spec.quantize = "int8";
  FederatedData data(spec.dataset_spec(), spec.data_config());
  EXPECT_THROW(spec.make_context(data), CheckError);
  spec.quantize = "none";
  spec.codec = "delta";
  EXPECT_THROW(spec.make_context(data), CheckError);
  spec.transport = "loopback";
  EXPECT_NO_THROW(spec.make_context(data));
}

// ---------------------------------------------------------------------------
// Transport equivalence

ExperimentSpec small_spec(const std::string& algo) {
  set_log_level(LogLevel::kWarn);
  ExperimentSpec spec;
  spec.dataset = "mnist";
  spec.clients = 6;
  spec.shard = 25;
  spec.test_per_class = 8;
  spec.rounds = 3;
  spec.epochs = 1;
  spec.sample = 0.5;
  spec.eval_every = 1;
  spec.seed = 17;
  spec.algo = algo;
  return spec;
}

void expect_same_learning(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.final_avg_accuracy, b.final_avg_accuracy);
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_EQ(a.curve[i].round, b.curve[i].round);
    EXPECT_EQ(a.curve[i].avg_accuracy, b.curve[i].avg_accuracy);
  }
  ASSERT_EQ(a.final_per_client.size(), b.final_per_client.size());
  for (std::size_t k = 0; k < a.final_per_client.size(); ++k) {
    EXPECT_EQ(a.final_per_client[k], b.final_per_client[k]);
  }
}

TEST(TransportEquivalence, LoopbackMatchesMemoryBitIdentically) {
  for (const char* algo : {"fedavg", "subfedavg_un", "lg_fedavg"}) {
    ExperimentSpec spec = small_spec(algo);
    const ExecutedRun memory = execute_experiment(spec);
    spec.transport = "loopback";
    const ExecutedRun loopback = execute_experiment(spec);
    expect_same_learning(memory.result, loopback.result);
    // The materialized path additionally charges the self-describing payload
    // headers, never less than the payload model.
    EXPECT_GE(loopback.result.up_bytes, memory.result.up_bytes) << algo;
    EXPECT_GE(loopback.result.down_bytes, memory.result.down_bytes) << algo;
  }
}

TEST(TransportEquivalence, SubprocessMatchesLoopbackExactly) {
  // Sub-FedAvg is the stateful worst case: masks, personal models and BN
  // buffers must all survive the side-band mirror round trip.
  ExperimentSpec spec = small_spec("subfedavg_un");
  spec.transport = "loopback";
  const ExecutedRun loopback = execute_experiment(spec);
  spec.transport = "subprocess";
  spec.channel_workers = 2;
  const ExecutedRun subprocess = execute_experiment(spec);
  expect_same_learning(loopback.result, subprocess.result);
  EXPECT_EQ(loopback.result.up_bytes, subprocess.result.up_bytes);
  EXPECT_EQ(loopback.result.down_bytes, subprocess.result.down_bytes);
  EXPECT_EQ(loopback.result.simulated_seconds, subprocess.result.simulated_seconds);
}

TEST(TransportEquivalence, QuantizedRunsStayNearBaselineAccuracy) {
  ExperimentSpec base = small_spec("subfedavg_un");
  base.transport = "loopback";
  const ExecutedRun fp32 = execute_experiment(base);
  for (const char* quantize : {"fp16", "int8"}) {
    ExperimentSpec spec = base;
    spec.quantize = quantize;
    const ExecutedRun run = execute_experiment(spec);
    EXPECT_NEAR(run.result.final_avg_accuracy, fp32.result.final_avg_accuracy, 0.15)
        << quantize;
    EXPECT_LT(run.result.total_bytes(), fp32.result.total_bytes()) << quantize;
    EXPECT_GT(run.metrics.at("compression_ratio"),
              fp32.metrics.at("compression_ratio")) << quantize;
  }
}

TEST(TransportEquivalence, EveryRegisteredAlgorithmReportsRealTrafficAndTime) {
  for (const std::string& algo : list_algorithms()) {
    if (algo.rfind("test_", 0) == 0) continue;  // this binary's test doubles
    ExperimentSpec spec = small_spec(algo);
    spec.rounds = 2;
    spec.transport = "loopback";
    const ExecutedRun run = execute_experiment(spec);
    EXPECT_GT(run.result.up_bytes, 0u) << algo;
    EXPECT_GT(run.result.down_bytes, 0u) << algo;
    EXPECT_GT(run.result.simulated_seconds, 0.0) << algo;
  }
}

// ---------------------------------------------------------------------------
// Straggler model

TEST(RoundTime, WiderLinkSpreadSlowsTheFleetDeterministically) {
  ExperimentSpec spec = small_spec("fedavg");
  spec.transport = "loopback";
  const ExecutedRun nominal = execute_experiment(spec);
  const ExecutedRun nominal_again = execute_experiment(spec);
  EXPECT_EQ(nominal.result.simulated_seconds, nominal_again.result.simulated_seconds);

  spec.link_spread = 8.0;
  const ExecutedRun straggly = execute_experiment(spec);
  // Same bytes, slower slowest-client: the synchronous round stretches.
  EXPECT_EQ(straggly.result.total_bytes(), nominal.result.total_bytes());
  EXPECT_GT(straggly.result.simulated_seconds, nominal.result.simulated_seconds);
  expect_same_learning(nominal.result, straggly.result);
}

// ---------------------------------------------------------------------------
// Crash isolation

/// Channel-routed test algorithm whose detached client half dies without
/// replying — the moral equivalent of a worker OOM-kill mid-round.
class CrashyAlgorithm final : public FederatedAlgorithm {
 public:
  explicit CrashyAlgorithm(FlContext ctx) : FederatedAlgorithm(std::move(ctx)) {}

  std::string name() const override { return "Crashy"; }

  void run_round(std::size_t round, std::span<const std::size_t> sampled) override {
    static const StateDict kEmpty;
    std::vector<ClientJob> jobs(sampled.size());
    for (std::size_t i = 0; i < sampled.size(); ++i) jobs[i] = {sampled[i], &kEmpty, nullptr};
    channel_->run_round(round, jobs,
                        [&](const ClientJob&, const StateDict&, bool detached) {
                          if (detached) ::_exit(7);  // die before replying
                          return ClientResult{};
                        });
  }

  double client_test_accuracy(std::size_t) override { return 0.0; }
};

const bool crashy_registered = [] {
  registry().add("test_crashy", "worker-killing channel test double",
                 [](const FlContext& ctx, const AlgoParams&) {
                   return std::make_unique<CrashyAlgorithm>(ctx);
                 });
  return true;
}();

TEST(CrashIsolation, DeadWorkerFailsItsRunWithAnError) {
  ExperimentSpec spec = small_spec("test_crashy");
  spec.rounds = 1;
  spec.transport = "subprocess";
  EXPECT_THROW(execute_experiment(spec), CheckError);
  // The same algorithm is fine in-process: the crash is transport-side.
  spec.transport = "loopback";
  EXPECT_NO_THROW(execute_experiment(spec));
}

TEST(CrashIsolation, SweepContainsTheFailureToOneRun) {
  SweepDescription description;
  description.base = small_spec("fedavg");
  description.base.rounds = 2;
  description.base.transport = "subprocess";
  description.add_axis("algo=test_crashy,fedavg");

  SweepOptions options;
  options.jobs = 2;
  options.out_dir.clear();
  options.echo_progress = false;
  const SweepSummary summary = run_sweep(description.expand(), options);
  ASSERT_EQ(summary.outcomes.size(), 2u);
  EXPECT_FALSE(summary.outcomes[0].ok);  // test_crashy
  EXPECT_NE(summary.outcomes[0].error.find("died"), std::string::npos);
  EXPECT_TRUE(summary.outcomes[1].ok);   // fedavg survives the neighbor's crash
  EXPECT_GT(summary.outcomes[1].result.final_avg_accuracy, 0.0);
}

}  // namespace
}  // namespace subfed
