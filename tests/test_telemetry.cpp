// Telemetry subsystem: level-gated instruments, the metrics JSON snapshot,
// trace spans + the Chrome exporter, the append-only rotating event log with
// durable cursors, arrival-trace replay determinism, the new spec validation
// rules, and the BENCH_*.json baseline manifests round-tripping through the
// util/json parser.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "fl/experiment.h"
#include "serve/session.h"
#include "telemetry/event_log.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"
#include "util/check.h"
#include "util/json.h"
#include "util/logging.h"

namespace subfed {
namespace {

/// Every test pins the process-wide level on entry and restores kOff on exit,
/// so test order never leaks a level into the bit-identity expectations.
struct LevelGuard {
  explicit LevelGuard(telemetry::Level level) { telemetry::set_level(level); }
  ~LevelGuard() { telemetry::set_level(telemetry::Level::kOff); }
};

std::string fresh_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/subfed_telemetry_" + name;
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".1");
  return path;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  SUBFEDAVG_CHECK(in.good(), "cannot read " << path);
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return text;
}

// ---------------------------------------------------------------------------
// Instruments and the level gate

TEST(Telemetry, OffLevelRecordsNothing) {
  LevelGuard guard(telemetry::Level::kOff);
  telemetry::reset_all();
  telemetry::Counter& c = telemetry::counter("test.off_counter");
  telemetry::Gauge& g = telemetry::gauge("test.off_gauge");
  telemetry::Histogram& h = telemetry::histogram("test.off_hist");
  telemetry::Timer& t = telemetry::timer("test.off_timer");
  c.add(5);
  g.set(42);
  h.record(1024);
  t.add_seconds(1.5);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(t.count(), 0u);

  const telemetry::StopWatch watch;
  EXPECT_FALSE(watch.armed());
  EXPECT_EQ(watch.seconds(), 0.0);
}

TEST(Telemetry, CountersLevelRecords) {
  LevelGuard guard(telemetry::Level::kCounters);
  telemetry::reset_all();
  telemetry::Counter& c = telemetry::counter("test.on_counter");
  telemetry::Gauge& g = telemetry::gauge("test.on_gauge");
  telemetry::Histogram& h = telemetry::histogram("test.on_hist");
  telemetry::Timer& t = telemetry::timer("test.on_timer");
  c.add();
  c.add(4);
  g.set(10);
  g.add(-3);
  h.record(0);
  h.record(1);
  h.record(1024);
  h.record(1500);
  t.add_seconds(0.25);
  t.add_seconds(0.5);
  EXPECT_EQ(c.value(), 5u);
  EXPECT_EQ(g.value(), 7);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 0u + 1u + 1024u + 1500u);
  EXPECT_EQ(h.bucket(0), 2u);   // 0 and 1 both land in bucket 0
  EXPECT_EQ(h.bucket(10), 2u);  // 1024 and 1500: floor(log2) == 10
  EXPECT_EQ(t.count(), 2u);
  EXPECT_NEAR(t.total_seconds(), 0.75, 1e-6);

  const telemetry::StopWatch watch;
  EXPECT_TRUE(watch.armed());
  EXPECT_GE(watch.seconds(), 0.0);

  // The registry returns the same instrument for the same name.
  EXPECT_EQ(&telemetry::counter("test.on_counter"), &c);
}

TEST(Telemetry, ParseLevelNamesAndErrors) {
  EXPECT_EQ(telemetry::parse_level("off"), telemetry::Level::kOff);
  EXPECT_EQ(telemetry::parse_level("counters"), telemetry::Level::kCounters);
  EXPECT_EQ(telemetry::parse_level("trace"), telemetry::Level::kTrace);
  EXPECT_THROW(telemetry::parse_level("verbose"), CheckError);
  EXPECT_STREQ(telemetry::level_name(telemetry::Level::kCounters), "counters");
}

TEST(Telemetry, MetricsJsonParsesAndCarriesEveryInstrumentShape) {
  LevelGuard guard(telemetry::Level::kCounters);
  telemetry::reset_all();
  telemetry::counter("test.json_counter").add(3);
  telemetry::gauge("test.json_gauge").set(-2);
  telemetry::histogram("test.json_hist").record(300);
  telemetry::timer("test.json_timer").add_seconds(0.1);

  const JsonValue snapshot = parse_json(telemetry::metrics_json());
  ASSERT_TRUE(snapshot.is_object());
  EXPECT_EQ(snapshot.string_or("telemetry_level", ""), "counters");
  EXPECT_EQ(snapshot.number_or("test.json_counter", -1.0), 3.0);
  EXPECT_EQ(snapshot.number_or("test.json_gauge", 0.0), -2.0);

  const JsonValue* timer = snapshot.find("test.json_timer");
  ASSERT_NE(timer, nullptr);
  EXPECT_EQ(timer->number_or("count", 0.0), 1.0);
  EXPECT_GT(timer->number_or("seconds", 0.0), 0.0);

  const JsonValue* hist = snapshot.find("test.json_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->number_or("count", 0.0), 1.0);
  EXPECT_EQ(hist->number_or("sum", 0.0), 300.0);
  const JsonValue* buckets = hist->find("buckets");
  ASSERT_NE(buckets, nullptr);
  EXPECT_EQ(buckets->number_or("2^8", 0.0), 1.0);  // floor(log2(300)) == 8

  telemetry::reset_all();
  const JsonValue cleared = parse_json(telemetry::metrics_json());
  EXPECT_EQ(cleared.number_or("test.json_counter", -1.0), 0.0);
}

// ---------------------------------------------------------------------------
// Trace spans + Chrome exporter

TEST(Telemetry, SpansRecordOnlyAtTraceLevel) {
  {
    LevelGuard guard(telemetry::Level::kCounters);
    telemetry::drain_spans();  // clear anything earlier tests buffered
    { telemetry::ScopedSpan span("below_trace"); }
    EXPECT_TRUE(telemetry::drain_spans().empty());
  }
  {
    LevelGuard guard(telemetry::Level::kTrace);
    { telemetry::ScopedSpan span("at_trace"); }
    const std::vector<telemetry::Span> spans = telemetry::drain_spans();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].name, "at_trace");
    EXPECT_GT(spans[0].tid, 0u);
    // Draining stole the buffer: a second drain is empty.
    EXPECT_TRUE(telemetry::drain_spans().empty());
  }
}

TEST(Telemetry, ChromeTraceJsonEscapesAndParses) {
  std::vector<telemetry::Span> spans;
  spans.push_back({"quote\"back\\slash", 10, 5, 1});
  spans.push_back({"plain", 20, 0, 2});
  const JsonValue doc = parse_json(telemetry::chrome_trace_json(spans));
  ASSERT_TRUE(doc.is_object());
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array.size(), 2u);
  EXPECT_EQ(events->array[0].string_or("name", ""), "quote\"back\\slash");
  EXPECT_EQ(events->array[0].string_or("ph", ""), "X");
  EXPECT_EQ(events->array[1].number_or("ts", -1.0), 20.0);

  EXPECT_TRUE(parse_json(telemetry::chrome_trace_json({})).is_object());
}

// ---------------------------------------------------------------------------
// EventLog: rotation, cursor paging, durable reopen

TEST(EventLog, AppendsAndPagesWholeLines) {
  const std::string path = fresh_path("basic.jsonl");
  telemetry::EventLog log(path, 1 << 20);
  const std::uint64_t header_end = log.end_cursor();
  EXPECT_GT(header_end, 0u);  // the log_open header is already in

  for (int i = 0; i < 10; ++i) {
    log.append("{\"event\": \"round\", \"round\": " + std::to_string(i) + "}");
  }

  // Page from 0 with a max_bytes that forces several pages; every chunk must
  // be whole lines and every line valid JSON.
  std::uint64_t cursor = 0;
  std::vector<std::string> lines;
  while (cursor < log.end_cursor()) {
    std::uint64_t next = cursor;
    const std::string chunk = log.tail(cursor, 96, &next);
    ASSERT_GT(next, cursor) << "tail must make progress";
    ASSERT_FALSE(chunk.empty());
    EXPECT_EQ(chunk.back(), '\n');
    std::size_t start = 0;
    while (start < chunk.size()) {
      const std::size_t end = chunk.find('\n', start);
      ASSERT_NE(end, std::string::npos);
      lines.push_back(chunk.substr(start, end - start));
      EXPECT_NO_THROW(parse_json(lines.back()));
      start = end + 1;
    }
    cursor = next;
  }
  ASSERT_EQ(lines.size(), 11u);  // header + 10 records
  EXPECT_EQ(parse_json(lines[0]).string_or("event", ""), "log_open");
  EXPECT_EQ(parse_json(lines[10]).number_or("round", -1.0), 9.0);

  // Caught up: empty chunk, cursor unchanged.
  std::uint64_t next = 0;
  EXPECT_TRUE(log.tail(cursor, 4096, &next).empty());
  EXPECT_EQ(next, cursor);

  std::filesystem::remove(path);
}

TEST(EventLog, RotationKeepsTwoGenerationsAndClampsStaleCursors) {
  const std::string path = fresh_path("rotate.jsonl");
  telemetry::EventLog log(path, 512);  // the minimum: rotates every few records
  const std::string filler(80, 'x');
  for (int i = 0; i < 40; ++i) {
    log.append("{\"round\": " + std::to_string(i) + ", \"pad\": \"" + filler + "\"}");
  }
  ASSERT_TRUE(std::filesystem::exists(log.rotated_path()));

  // A cursor pointing at rotated-away bytes clamps forward to the oldest
  // retained byte — the start of path.1, whose first line is its header.
  std::uint64_t next = 0;
  const std::string chunk = log.tail(0, 1 << 20, &next);
  ASSERT_FALSE(chunk.empty());
  EXPECT_GT(next, 0u);
  const std::string first_line = chunk.substr(0, chunk.find('\n'));
  const JsonValue header = parse_json(first_line);
  EXPECT_EQ(header.string_or("event", ""), "log_open");
  EXPECT_GT(header.number_or("base", -1.0), 0.0);

  // Paging from the clamped position reaches the live end and includes the
  // most recent record.
  std::uint64_t cursor = next - chunk.size();  // = clamped start
  std::string all;
  while (cursor < log.end_cursor()) {
    std::uint64_t n = cursor;
    const std::string c = log.tail(cursor, 4096, &n);
    ASSERT_GT(n, cursor);
    all += c;
    cursor = n;
  }
  EXPECT_NE(all.find("\"round\": 39"), std::string::npos);

  // A cursor past the end is clamped back: empty chunk, next == end.
  std::uint64_t clamped = 0;
  EXPECT_TRUE(log.tail(log.end_cursor() + 1000, 4096, &clamped).empty());
  EXPECT_EQ(clamped, log.end_cursor());

  std::filesystem::remove(path);
  std::filesystem::remove(path + ".1");
}

TEST(EventLog, ReopenRecoversLogicalPositionAcrossKill) {
  const std::string path = fresh_path("reopen.jsonl");
  std::uint64_t saved_cursor = 0;
  {
    telemetry::EventLog log(path, 1 << 20);
    log.append("{\"life\": 1, \"round\": 1}");
    log.append("{\"life\": 1, \"round\": 2}");
    saved_cursor = log.end_cursor();
  }  // destructor — but a kill -9 leaves the same bytes, since appends flush
  {
    telemetry::EventLog log(path, 1 << 20);
    EXPECT_EQ(log.end_cursor(), saved_cursor) << "reopen must recover the logical offset";
    log.append("{\"life\": 2, \"round\": 3}");

    // A reader holding the pre-restart cursor sees exactly the new records.
    std::uint64_t next = 0;
    const std::string chunk = log.tail(saved_cursor, 4096, &next);
    EXPECT_EQ(chunk, "{\"life\": 2, \"round\": 3}\n");
    EXPECT_EQ(next, log.end_cursor());

    // And a reader from 0 replays both lives (nothing rotated away here).
    std::uint64_t n2 = 0;
    const std::string all = log.tail(0, 1 << 20, &n2);
    EXPECT_NE(all.find("\"life\": 1, \"round\": 1"), std::string::npos);
    EXPECT_NE(all.find("\"life\": 2, \"round\": 3"), std::string::npos);
  }
  std::filesystem::remove(path);
}

TEST(EventLog, RejectsBadConstructionAndMultilineRecords) {
  EXPECT_THROW(telemetry::EventLog("", 1024), CheckError);
  EXPECT_THROW(telemetry::EventLog(fresh_path("tiny.jsonl"), 100), CheckError);
  const std::string path = fresh_path("oneline.jsonl");
  telemetry::EventLog log(path, 1024);
  EXPECT_THROW(log.append("{\"a\": 1}\n{\"b\": 2}"), CheckError);
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// Round-phase trace through a real (loopback) federation

TEST(TelemetryIntegration, LoopbackSessionEmitsAllSixRoundPhases) {
  set_log_level(LogLevel::kWarn);
  LevelGuard guard(telemetry::Level::kTrace);
  telemetry::drain_spans();

  ExperimentSpec spec;
  spec.dataset = "mnist";
  spec.clients = 6;
  spec.shard = 25;
  spec.test_per_class = 8;
  spec.rounds = 2;
  spec.epochs = 1;
  spec.sample = 0.5;
  spec.seed = 17;
  spec.algo = "fedavg";
  spec.transport = "loopback";  // materialized path: encode/exchange/collect
  spec.telemetry = "trace";

  std::unique_ptr<FederationSession> session = FederationSession::from_spec(spec);
  while (session->round() < spec.rounds) session->advance_round();
  session->evaluate();

  const FederationSession::RoundPhases& last = session->last_phases();
  EXPECT_GT(last.transport_exchange, 0.0);
  EXPECT_GT(last.eval, 0.0);
  const FederationSession::RoundPhases& totals = session->total_phases();
  EXPECT_GE(totals.sample, 0.0);
  EXPECT_GT(totals.broadcast_encode, 0.0);
  EXPECT_GT(totals.transport_exchange, 0.0);
  EXPECT_GT(totals.collect, 0.0);

  const std::vector<telemetry::Span> spans = telemetry::drain_spans();
  const std::string trace = telemetry::chrome_trace_json(spans);
  for (const char* phase : {"sample", "broadcast_encode", "transport_exchange", "collect",
                            "aggregate", "eval"}) {
    EXPECT_NE(trace.find("\"name\": \"" + std::string(phase) + "\""), std::string::npos)
        << "missing phase span: " << phase;
  }

  // The exporter's file form loads as JSON with a traceEvents array.
  const std::string path = fresh_path("trace.json");
  telemetry::write_chrome_trace(path, spans);
  const JsonValue doc = parse_json(read_file(path));
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_GE(events->array.size(), 6u);
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// Arrival-trace replay

class CohortRecorder final : public RoundObserver {
 public:
  void on_round_begin(std::size_t round, std::span<const std::size_t> sampled) override {
    cohorts_.emplace_back(round, std::vector<std::size_t>(sampled.begin(), sampled.end()));
  }
  const std::vector<std::pair<std::size_t, std::vector<std::size_t>>>& cohorts() const {
    return cohorts_;
  }

 private:
  std::vector<std::pair<std::size_t, std::vector<std::size_t>>> cohorts_;
};

ExperimentSpec arrival_trace_spec(const std::string& trace_path) {
  set_log_level(LogLevel::kWarn);
  ExperimentSpec spec;
  spec.dataset = "mnist";
  spec.clients = 6;
  spec.shard = 25;
  spec.test_per_class = 8;
  spec.rounds = 4;
  spec.epochs = 1;
  spec.sample = 0.5;
  spec.seed = 17;
  spec.algo = "fedavg";
  spec.arrival_trace = trace_path;
  return spec;
}

TEST(ArrivalTrace, ReplaysDeterministicallyAndCapsPopulationAtLineCount) {
  const std::string trace_path = fresh_path("arrivals.txt");
  {
    std::ofstream out(trace_path);
    out << "# three arrivals over two simulated seconds\n"
        << "0.0\n"
        << "0.5\n"
        << "\n"
        << "2.0\n";
  }
  const ExperimentSpec spec = arrival_trace_spec(trace_path);

  CohortRecorder a_rec;
  CohortRecorder b_rec;
  std::unique_ptr<FederationSession> a = FederationSession::from_spec(spec);
  std::unique_ptr<FederationSession> b = FederationSession::from_spec(spec);
  for (std::size_t r = 0; r < spec.rounds; ++r) {
    a->advance_round(&a_rec);
    b->advance_round(&b_rec);
  }

  // Two identical sessions replay the identical cohort sequence.
  ASSERT_EQ(a_rec.cohorts().size(), b_rec.cohorts().size());
  ASSERT_FALSE(a_rec.cohorts().empty());
  for (std::size_t i = 0; i < a_rec.cohorts().size(); ++i) {
    EXPECT_EQ(a_rec.cohorts()[i].first, b_rec.cohorts()[i].first);
    EXPECT_EQ(a_rec.cohorts()[i].second, b_rec.cohorts()[i].second);
  }

  // The population is capped at the trace's 3 timestamps — of 6 spec clients
  // only 3 ever arrive, so no cohort exceeds 3 and at most 3 are present.
  EXPECT_TRUE(a->event_driven());
  EXPECT_LE(a->arrived_clients(), 3u);
  for (const auto& [round, cohort] : a_rec.cohorts()) {
    EXPECT_LE(cohort.size(), 3u) << "round " << round;
  }

  std::filesystem::remove(trace_path);
}

TEST(ArrivalTrace, RejectsMalformedTraceFiles) {
  const std::string decreasing = fresh_path("decreasing.txt");
  {
    std::ofstream out(decreasing);
    out << "1.0\n0.5\n";
  }
  EXPECT_THROW(FederationSession::from_spec(arrival_trace_spec(decreasing)), CheckError);
  std::filesystem::remove(decreasing);

  const std::string empty = fresh_path("empty.txt");
  {
    std::ofstream out(empty);
    out << "# only a comment\n";
  }
  EXPECT_THROW(FederationSession::from_spec(arrival_trace_spec(empty)), CheckError);
  std::filesystem::remove(empty);

  EXPECT_THROW(FederationSession::from_spec(arrival_trace_spec(fresh_path("missing.txt"))),
               CheckError);
}

TEST(ArrivalTrace, ValidatesCrossRulesWithActionableMessages) {
  ExperimentSpec spec;
  spec.arrival_trace = "arrivals.txt";
  spec.arrivals = 2.0;
  try {
    spec.validate();
    FAIL() << "arrival_trace + arrivals must throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("mutually exclusive"), std::string::npos)
        << e.what();
  }
  spec.arrivals = 0.0;
  EXPECT_NO_THROW(spec.validate());

  spec.checkpoint_every = 1;
  try {
    spec.validate();
    FAIL() << "arrival_trace + checkpointing must throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("arrival_trace"), std::string::npos) << e.what();
  }
  spec.checkpoint_every = 0;

  // dwell needs SOME arrival process — a trace counts.
  ExperimentSpec dwell_only;
  dwell_only.dwell = 1.0;
  EXPECT_THROW(dwell_only.validate(), CheckError);
  dwell_only.arrival_trace = "arrivals.txt";
  EXPECT_NO_THROW(dwell_only.validate());

  // The telemetry field validates its level name at spec-parse time.
  ExperimentSpec telem;
  telem.telemetry = "bogus";
  EXPECT_THROW(telem.validate(), CheckError);
  telem.telemetry = "counters";
  EXPECT_NO_THROW(telem.validate());
}

// ---------------------------------------------------------------------------
// BENCH_*.json baselines round-trip through the util/json parser

TEST(BenchBaselines, EveryManifestParsesWithTheExpectedShape) {
  const char* repo = std::getenv("SUBFED_REPO_DIR");
  if (repo == nullptr || *repo == '\0') {
    GTEST_SKIP() << "SUBFED_REPO_DIR not set (ctest sets it; set it manually otherwise)";
  }
  const std::filesystem::path dir = std::filesystem::path(repo) / "bench" / "baselines";
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  std::size_t manifests = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".json") continue;
    ++manifests;
    const JsonValue doc = parse_json(read_file(entry.path().string()));
    ASSERT_TRUE(doc.is_object()) << entry.path();
    EXPECT_FALSE(doc.string_or("file", "").empty()) << entry.path();
    const JsonValue* metrics = doc.find("metrics");
    ASSERT_NE(metrics, nullptr) << entry.path();
    ASSERT_TRUE(metrics->is_array()) << entry.path();
    EXPECT_FALSE(metrics->array.empty()) << entry.path();
    for (const JsonValue& metric : metrics->array) {
      EXPECT_FALSE(metric.string_or("name", "").empty()) << entry.path();
      const std::string direction = metric.string_or("direction", "");
      EXPECT_TRUE(direction == "lower" || direction == "higher")
          << entry.path() << ": " << metric.string_or("name", "");
      const JsonValue* value = metric.find("value");
      ASSERT_NE(value, nullptr) << entry.path();
      EXPECT_TRUE(value->is_number()) << entry.path();
      const JsonValue* ratio = metric.find("ratio");
      if (ratio != nullptr) {
        EXPECT_FALSE(ratio->string_or("numerator", "").empty()) << entry.path();
        EXPECT_FALSE(ratio->string_or("denominator", "").empty()) << entry.path();
      } else {
        EXPECT_FALSE(metric.string_or("path", "").empty()) << entry.path();
      }
    }
  }
  EXPECT_GE(manifests, 5u) << "expected the BENCH baselines (incl. BENCH_telemetry.json)";
}

TEST(BenchBaselines, TelemetryBenchEmitterFormatRoundTrips) {
  // The exact shape bench_telemetry emits; the BENCH_telemetry.json ratio
  // selectors ([mode=...].seconds) address records by this key.
  const std::string emitted =
      "[\n  {\"mode\": \"off\", \"seconds\": 1.25, \"reps\": 3, \"rounds\": 3, "
      "\"clients\": 20},\n  {\"mode\": \"counters\", \"seconds\": 1.26, \"reps\": 3, "
      "\"rounds\": 3, \"clients\": 20}\n]\n";
  const JsonValue doc = parse_json(emitted);
  ASSERT_TRUE(doc.is_array());
  ASSERT_EQ(doc.array.size(), 2u);
  EXPECT_EQ(doc.array[0].string_or("mode", ""), "off");
  EXPECT_EQ(doc.array[1].string_or("mode", ""), "counters");
  EXPECT_GT(doc.array[0].number_or("seconds", 0.0), 0.0);
  EXPECT_GT(doc.array[1].number_or("seconds", 0.0), 0.0);
}

}  // namespace
}  // namespace subfed
