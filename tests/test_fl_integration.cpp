// End-to-end Sub-FedAvg federations: the paper's qualitative claims on a
// scaled-down federation (shape checks, not absolute numbers).
#include <gtest/gtest.h>

#include <cmath>

#include "fl/driver.h"
#include "fl/fedavg.h"
#include "fl/standalone.h"
#include "fl/subfedavg.h"
#include "util/logging.h"

namespace subfed {
namespace {

class Integration : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { set_log_level(LogLevel::kWarn); }

  static const FederatedData& data() {
    static FederatedData instance(DatasetSpec::mnist(), [] {
      FederatedDataConfig config;
      config.partition = {8, 2, 40};
      config.test_per_class = 10;
      config.seed = 51;
      return config;
    }());
    return instance;
  }

  static FlContext ctx() {
    FlContext c;
    c.data = &data();
    c.spec = ModelSpec::cnn5(10);
    c.train = {/*epochs=*/3, /*batch=*/10};
    c.seed = 51;
    return c;
  }

  static DriverConfig driver(std::size_t rounds) {
    DriverConfig d;
    d.rounds = rounds;
    d.sample_rate = 0.5;
    d.seed = 51;
    return d;
  }

  static SubFedAvgConfig un_config(double target) {
    SubFedAvgConfig config;
    config.unstructured = {/*acc=*/0.3, target, /*eps=*/1e-4, /*rate=*/0.15};
    return config;
  }
};

TEST_F(Integration, SubFedAvgUnReachesHighPersonalizedAccuracy) {
  SubFedAvg alg(ctx(), un_config(0.5));
  const RunResult result = run_federation(alg, driver(10));
  EXPECT_GT(result.final_avg_accuracy, 0.70);
  // Pruning actually progressed federation-wide.
  EXPECT_GT(alg.average_unstructured_pruned(), 0.2);
}

TEST_F(Integration, SubFedAvgBeatsFedAvgUnderPathologicalNonIid) {
  // The paper's core claim (Remark-2): under 2-label non-IID, the global
  // FedAvg model scores clearly below the personalized Sub-FedAvg models.
  SubFedAvg sub(ctx(), un_config(0.5));
  const RunResult sub_result = run_federation(sub, driver(8));

  FedAvg fed(ctx());
  const RunResult fed_result = run_federation(fed, driver(8));

  EXPECT_GT(sub_result.final_avg_accuracy, fed_result.final_avg_accuracy + 0.05);
}

TEST_F(Integration, SubFedAvgCommCheaperThanFedAvg) {
  SubFedAvg sub(ctx(), un_config(0.7));
  const RunResult sub_result = run_federation(sub, driver(8));
  FedAvg fed(ctx());
  const RunResult fed_result = run_federation(fed, driver(8));
  EXPECT_LT(sub_result.total_bytes(), fed_result.total_bytes());
}

TEST_F(Integration, HybridPrunesChannelsAndReducesFlops) {
  SubFedAvgConfig config;
  config.hybrid = true;
  config.unstructured = {/*acc=*/0.3, /*target=*/0.5, /*eps=*/1e-4, /*rate=*/0.15};
  config.structured = {/*acc=*/0.3, /*target=*/0.4, /*eps=*/0.01, /*rate=*/0.2};
  SubFedAvg alg(ctx(), config);
  const RunResult result = run_federation(alg, driver(10));

  EXPECT_GT(result.final_avg_accuracy, 0.65);
  EXPECT_GT(alg.average_structured_pruned(), 0.15);
  // Per-client FLOP reduction reflects the channel pruning.
  double total_speedup = 0.0;
  for (std::size_t k = 0; k < alg.num_clients(); ++k) {
    const ReductionReport r = alg.client_reduction(k);
    total_speedup += r.flop_speedup;
    EXPECT_GE(r.flop_speedup, 1.0);
  }
  EXPECT_GT(total_speedup / static_cast<double>(alg.num_clients()), 1.1);
}

TEST_F(Integration, StrictIntersectionAblationStillLearns) {
  SubFedAvg alg(ctx(), un_config(0.5));
  alg.set_strict_intersection(true);
  const RunResult result = run_federation(alg, driver(8));
  EXPECT_GT(result.final_avg_accuracy, 0.65);
}

TEST_F(Integration, RunIsDeterministic) {
  auto run_once = [&] {
    SubFedAvg alg(ctx(), un_config(0.5));
    return run_federation(alg, driver(4));
  };
  const RunResult a = run_once();
  const RunResult b = run_once();
  EXPECT_EQ(a.final_avg_accuracy, b.final_avg_accuracy);
  EXPECT_EQ(a.up_bytes, b.up_bytes);
  ASSERT_EQ(a.final_per_client.size(), b.final_per_client.size());
  for (std::size_t k = 0; k < a.final_per_client.size(); ++k) {
    EXPECT_EQ(a.final_per_client[k], b.final_per_client[k]);
  }
}

TEST_F(Integration, PartnersShareSubnetworks) {
  // Clients with overlapping labels end up with more similar masks than
  // clients with disjoint labels — the paper's Client Subnetwork Observation.
  SubFedAvg alg(ctx(), un_config(0.5));
  run_federation(alg, driver(10));

  double overlap_similar = 0.0, overlap_disjoint = 0.0;
  std::size_t n_similar = 0, n_disjoint = 0;
  for (std::size_t a = 0; a < alg.num_clients(); ++a) {
    for (std::size_t b = a + 1; b < alg.num_clients(); ++b) {
      const auto& la = data().client(a).labels_present;
      const auto& lb = data().client(b).labels_present;
      bool shares = false;
      for (const auto l : la) {
        for (const auto m : lb) shares |= (l == m);
      }
      const double jac = ModelMask::jaccard_overlap(alg.client(a).weight_mask(),
                                                    alg.client(b).weight_mask());
      if (shares) {
        overlap_similar += jac;
        ++n_similar;
      } else {
        overlap_disjoint += jac;
        ++n_disjoint;
      }
    }
  }
  if (n_similar > 0 && n_disjoint > 0) {
    EXPECT_GE(overlap_similar / n_similar + 0.02, overlap_disjoint / n_disjoint);
  }
}

TEST_F(Integration, ServerStateStaysFiniteAndBounded) {
  SubFedAvg alg(ctx(), un_config(0.7));
  run_federation(alg, driver(8));
  for (const auto& [name, tensor] : alg.global_state()) {
    for (std::size_t i = 0; i < tensor.numel(); ++i) {
      ASSERT_TRUE(std::isfinite(tensor[i])) << name;
    }
    EXPECT_LT(tensor.abs_max(), 1e3f) << name;
  }
}

}  // namespace
}  // namespace subfed
