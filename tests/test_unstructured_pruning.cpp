// Magnitude pruning: schedule arithmetic, per-layer percentiles, monotonicity.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/linear.h"
#include "nn/model_zoo.h"
#include "pruning/gate.h"
#include "pruning/unstructured.h"
#include "util/check.h"
#include "util/rng.h"

namespace subfed {
namespace {

TEST(Schedule, NextPrunedFraction) {
  // Prune 10% of remaining per round toward a 50% target.
  EXPECT_NEAR(next_pruned_fraction(0.0, 0.1, 0.5), 0.1, 1e-12);
  EXPECT_NEAR(next_pruned_fraction(0.1, 0.1, 0.5), 0.19, 1e-12);
  EXPECT_NEAR(next_pruned_fraction(0.45, 0.1, 0.5), 0.5, 1e-12);  // clamped
  EXPECT_NEAR(next_pruned_fraction(0.5, 0.1, 0.5), 0.5, 1e-12);   // at target
}

TEST(Schedule, ConvergesToTarget) {
  double pruned = 0.0;
  for (int i = 0; i < 200; ++i) pruned = next_pruned_fraction(pruned, 0.1, 0.7);
  EXPECT_NEAR(pruned, 0.7, 1e-9);
}

TEST(MagnitudePruning, PrunesSmallestPerLayer) {
  Model m;
  auto* fc = m.add(std::make_unique<Linear>("fc", 5, 2));
  fc->weight().value = Tensor({2, 5}, std::vector<float>{0.1f, -0.9f, 0.5f, -0.2f, 0.7f,
                                                         0.05f, 0.6f, -0.4f, 0.3f, -0.8f});
  ModelMask ones = ModelMask::ones_like(m, MaskScope::kAllPrunable);
  ModelMask pruned = derive_magnitude_mask(m, ones, 0.4);  // prune 4 of 10

  const Tensor& mask = *pruned.find("fc.weight");
  // Smallest |w|: 0.05, 0.1, 0.2, 0.3 at indices 5, 0, 3, 8.
  EXPECT_EQ(mask[5], 0.0f);
  EXPECT_EQ(mask[0], 0.0f);
  EXPECT_EQ(mask[3], 0.0f);
  EXPECT_EQ(mask[8], 0.0f);
  EXPECT_EQ(mask[1], 1.0f);
  EXPECT_NEAR(pruned.pruned_fraction(), 0.4, 1e-12);
}

TEST(MagnitudePruning, MonotoneNoRevival) {
  Rng rng(1);
  Model m = ModelSpec::cnn5(10).build_init(rng);
  ModelMask mask = ModelMask::ones_like(m, MaskScope::kAllPrunable);
  mask = derive_magnitude_mask(m, mask, 0.3);

  // Perturb weights so magnitudes reorder, then prune further: previously
  // pruned positions must stay pruned.
  for (Parameter* p : m.parameters()) {
    Rng r = rng.split(p->name);
    p->value.fill_normal(r, 0.0f, 1.0f);
  }
  ModelMask next = derive_magnitude_mask(m, mask, 0.5);
  for (const auto& [name, before] : mask) {
    const Tensor& after = *next.find(name);
    for (std::size_t i = 0; i < before.numel(); ++i) {
      if (before[i] == 0.0f) {
        EXPECT_EQ(after[i], 0.0f) << name << "[" << i << "]";
      }
    }
  }
  EXPECT_NEAR(next.pruned_fraction(), 0.5, 0.01);
}

TEST(MagnitudePruning, EachLayerHitsTargetIndividually) {
  // Per-layer percentile semantics: every covered tensor ends at the target
  // fraction, not just the aggregate.
  Rng rng(2);
  Model m = ModelSpec::lenet5(10).build_init(rng);
  ModelMask ones = ModelMask::ones_like(m, MaskScope::kAllPrunable);
  ModelMask pruned = derive_magnitude_mask(m, ones, 0.6);
  for (const auto& [name, mask] : pruned) {
    std::size_t kept = 0;
    for (std::size_t i = 0; i < mask.numel(); ++i) kept += (mask[i] != 0.0f);
    const double fraction = 1.0 - static_cast<double>(kept) / mask.numel();
    EXPECT_NEAR(fraction, 0.6, 1.0 / static_cast<double>(mask.numel()) + 1e-9) << name;
  }
}

TEST(MagnitudePruning, NeverEmptiesATensor) {
  Model m;
  auto* fc = m.add(std::make_unique<Linear>("fc", 2, 2));
  fc->weight().value = Tensor({2, 2}, std::vector<float>{1, 2, 3, 4});
  ModelMask ones = ModelMask::ones_like(m, MaskScope::kAllPrunable);
  ModelMask pruned = derive_magnitude_mask(m, ones, 0.99);
  std::size_t kept = 0;
  const Tensor& mask = *pruned.find("fc.weight");
  for (std::size_t i = 0; i < 4; ++i) kept += (mask[i] != 0.0f);
  EXPECT_GE(kept, 1u);
  // The survivor is the largest magnitude.
  EXPECT_EQ(mask[3], 1.0f);
}

TEST(MagnitudePruning, NoOpWhenTargetAlreadyMet) {
  Rng rng(3);
  Model m = ModelSpec::cnn5(10).build_init(rng);
  ModelMask mask = ModelMask::ones_like(m, MaskScope::kAllPrunable);
  mask = derive_magnitude_mask(m, mask, 0.5);
  ModelMask again = derive_magnitude_mask(m, mask, 0.3);  // lower target
  EXPECT_EQ(ModelMask::hamming_distance(mask, again), 0.0);
}

TEST(MagnitudePruning, RespectsScopeFcOnly) {
  Rng rng(4);
  Model m = ModelSpec::cnn5(10).build_init(rng);
  ModelMask mask = ModelMask::ones_like(m, MaskScope::kFcOnly);
  ModelMask pruned = derive_magnitude_mask(m, mask, 0.5);
  EXPECT_EQ(pruned.find("conv1.weight"), nullptr);
  EXPECT_NEAR(pruned.pruned_fraction(), 0.5, 0.01);
}

TEST(MagnitudePruning, RejectsDegenerateTarget) {
  Rng rng(5);
  Model m = ModelSpec::cnn5(10).build_init(rng);
  ModelMask mask = ModelMask::ones_like(m, MaskScope::kAllPrunable);
  EXPECT_THROW(derive_magnitude_mask(m, mask, 1.0), CheckError);
  EXPECT_THROW(derive_magnitude_mask(m, mask, -0.1), CheckError);
}

TEST(PruneGate, TripleCondition) {
  const PruneGateConfig config{/*acc=*/0.5, /*target=*/0.5, /*eps=*/1e-4, /*rate=*/0.1};
  // All conditions met.
  EXPECT_TRUE(prune_gate_open(config, {0.6, 0.3, 1e-3}));
  // Accuracy below threshold.
  EXPECT_FALSE(prune_gate_open(config, {0.4, 0.3, 1e-3}));
  // Target reached.
  EXPECT_FALSE(prune_gate_open(config, {0.6, 0.5, 1e-3}));
  // Mask stable (distance below ε).
  EXPECT_FALSE(prune_gate_open(config, {0.6, 0.3, 1e-5}));
  // Boundary: acc exactly at threshold passes; distance exactly ε passes.
  EXPECT_TRUE(prune_gate_open(config, {0.5, 0.3, 1e-4}));
}

}  // namespace
}  // namespace subfed
