// Resident federation server: session stepping ≡ batch, checkpoint/restore
// resumes bit-identically mid-federation, the ServerLoop serves
// kStatus/kGetModel during live rounds, a restarted server continues the
// round counter, and the new spec fields validate with actionable messages.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "comm/serialize.h"
#include "fl/checkpoint.h"
#include "fl/experiment.h"
#include "fl/worker.h"
#include "net/socket.h"
#include "serve/server.h"
#include "serve/session.h"
#include "util/check.h"
#include "util/json.h"
#include "util/logging.h"

namespace subfed {
namespace {

ExperimentSpec small_spec(const std::string& algo) {
  set_log_level(LogLevel::kWarn);
  ExperimentSpec spec;
  spec.dataset = "mnist";
  spec.clients = 6;
  spec.shard = 25;
  spec.test_per_class = 8;
  spec.rounds = 3;
  spec.epochs = 1;
  spec.sample = 0.5;
  spec.eval_every = 1;
  spec.seed = 17;
  spec.algo = algo;
  spec.transport = "loopback";
  return spec;
}

std::string fresh_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/subfed_serve_" + name;
  std::filesystem::remove(path);
  return path;
}

// ---------------------------------------------------------------------------
// FederationSession: stepping ≡ batch

TEST(FederationSession, SteppingRoundByRoundMatchesBatchBitIdentically) {
  for (const std::string& algo : {std::string("fedavg"), std::string("subfedavg_un")}) {
    ExperimentSpec spec = small_spec(algo);
    spec.dropout = 0.3;  // exercise the dropout stream too
    const ExecutedRun batch = execute_experiment(spec);

    std::unique_ptr<FederationSession> session = FederationSession::from_spec(spec);
    while (session->round() < spec.rounds) {
      if (!session->advance_round()) continue;
      const bool last = session->round() == spec.rounds;
      if (last || session->round() % spec.eval_every == 0) session->evaluate();
    }
    const RunResult stepped = session->finish();

    EXPECT_EQ(stepped.final_avg_accuracy, batch.result.final_avg_accuracy) << algo;
    ASSERT_EQ(stepped.curve.size(), batch.result.curve.size()) << algo;
    for (std::size_t i = 0; i < stepped.curve.size(); ++i) {
      EXPECT_EQ(stepped.curve[i].round, batch.result.curve[i].round) << algo;
      EXPECT_EQ(stepped.curve[i].avg_accuracy, batch.result.curve[i].avg_accuracy) << algo;
    }
    ASSERT_EQ(stepped.final_per_client.size(), batch.result.final_per_client.size()) << algo;
    for (std::size_t i = 0; i < stepped.final_per_client.size(); ++i) {
      EXPECT_EQ(stepped.final_per_client[i], batch.result.final_per_client[i]) << algo;
    }
    EXPECT_EQ(stepped.up_bytes, batch.result.up_bytes) << algo;
    EXPECT_EQ(stepped.down_bytes, batch.result.down_bytes) << algo;
    EXPECT_EQ(stepped.simulated_seconds, batch.result.simulated_seconds) << algo;
    EXPECT_EQ(stepped.dropped_clients, batch.result.dropped_clients) << algo;
    EXPECT_EQ(stepped.skipped_rounds, batch.result.skipped_rounds) << algo;
  }
}

// ---------------------------------------------------------------------------
// Checkpoint/restore equivalence mid-federation

TEST(FederationSession, RestoredSessionProducesBitIdenticalNextRound) {
  for (const std::string& algo : {std::string("fedavg"), std::string("subfedavg_un")}) {
    ExperimentSpec spec = small_spec(algo);
    spec.rounds = 4;
    spec.dropout = 0.25;  // the restore must replay BOTH rng streams

    // Uninterrupted reference: run to round 2, snapshot, keep going.
    std::unique_ptr<FederationSession> a = FederationSession::from_spec(spec);
    while (a->round() < 2) a->advance_round();
    const std::string path = fresh_path(algo + ".session");
    a->save(path);

    const std::uint64_t a_up_before = a->total_up_bytes();
    const std::uint64_t a_down_before = a->total_down_bytes();
    a->advance_round();  // round 3 of the uninterrupted run

    // Crash-restart: a FRESH session built from the same spec, restored.
    std::unique_ptr<FederationSession> b = FederationSession::from_spec(spec);
    b->restore(path);
    EXPECT_EQ(b->round(), 2u) << algo;
    EXPECT_EQ(b->total_up_bytes(), a_up_before) << algo;
    EXPECT_EQ(b->total_down_bytes(), a_down_before) << algo;

    const std::uint64_t b_up_before = b->total_up_bytes();
    const std::uint64_t b_down_before = b->total_down_bytes();
    b->advance_round();  // round 3 of the restored run

    // Round 3 must be bit-identical: same full algorithm state afterwards,
    // same envelope traffic, same simulated duration, same casualties.
    EXPECT_EQ(checkpoint_bytes(a->algorithm()), checkpoint_bytes(b->algorithm())) << algo;
    EXPECT_EQ(a->total_up_bytes() - a_up_before, b->total_up_bytes() - b_up_before) << algo;
    EXPECT_EQ(a->total_down_bytes() - a_down_before, b->total_down_bytes() - b_down_before)
        << algo;
    EXPECT_EQ(a->algorithm().last_round_seconds(), b->algorithm().last_round_seconds())
        << algo;
    EXPECT_EQ(a->progress().dropped_clients, b->progress().dropped_clients) << algo;

    std::filesystem::remove(path);
  }
}

TEST(FederationSession, RestoreRejectsACheckpointFromADifferentSpec) {
  ExperimentSpec spec = small_spec("fedavg");
  std::unique_ptr<FederationSession> a = FederationSession::from_spec(spec);
  a->advance_round();
  const std::string path = fresh_path("mismatch.session");
  a->save(path);

  ExperimentSpec other = small_spec("fedavg");
  other.seed = 99;  // different federation entirely
  std::unique_ptr<FederationSession> b = FederationSession::from_spec(other);
  try {
    b->restore(path);
    FAIL() << "restoring a different spec's checkpoint must throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("different spec"), std::string::npos) << e.what();
  }
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// Spec validation for the resident-mode fields

TEST(ServeSpec, ValidatesResidentFieldsWithActionableMessages) {
  ExperimentSpec spec;
  spec.serve = 1;
  try {
    spec.validate();
    FAIL() << "serve=1 without tcp must throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("transport=tcp"), std::string::npos) << e.what();
  }

  spec.transport = "tcp";
  spec.listen = "127.0.0.1:0";
  spec.status_listen = "127.0.0.1:0";
  try {
    spec.validate();  // checkpoint_every still 0
    FAIL() << "serve=1 without checkpointing must throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("checkpoint_every"), std::string::npos) << e.what();
  }

  spec.checkpoint_every = 1;
  EXPECT_NO_THROW(spec.validate());

  spec.status_listen = "not-an-address";
  EXPECT_THROW(spec.validate(), CheckError);
  spec.status_listen.clear();
  try {
    spec.validate();  // serve=1 with no request address
    FAIL() << "serve=1 without status_listen must throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("status_listen"), std::string::npos) << e.what();
  }
  spec.status_listen = "127.0.0.1:0";

  spec.serve = 2;
  EXPECT_THROW(spec.validate(), CheckError);

  // The resident-only fields are rejected on batch specs, with pointers.
  ExperimentSpec batch;
  batch.status_listen = "127.0.0.1:9100";
  try {
    batch.validate();
    FAIL() << "status_listen without serve=1 must throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("serve=1"), std::string::npos) << e.what();
  }
  batch.status_listen.clear();
  batch.min_participants = 2;
  EXPECT_THROW(batch.validate(), CheckError);
  batch.min_participants = 0;
  EXPECT_NO_THROW(batch.validate());

  // And execute_experiment refuses to run a resident spec as a batch.
  ExperimentSpec resident = small_spec("fedavg");
  resident.serve = 1;
  resident.transport = "tcp";
  resident.listen = "127.0.0.1:0";
  resident.status_listen = "127.0.0.1:0";
  resident.checkpoint_every = 1;
  EXPECT_THROW(execute_experiment(resident), CheckError);
}

// ---------------------------------------------------------------------------
// ServerLoop over real sockets

ExperimentSpec serve_spec(const std::string& checkpoint_path) {
  ExperimentSpec spec = small_spec("fedavg");
  spec.serve = 1;
  spec.transport = "tcp";
  spec.listen = "127.0.0.1:0";
  spec.status_listen = "127.0.0.1:0";
  spec.channel_workers = 2;
  spec.aggregation = "buffered";
  spec.buffer_k = 2;
  spec.eval_every = 0;  // resident mode: no per-round eval in this test
  spec.checkpoint_every = 1;
  spec.checkpoint_path = checkpoint_path;
  spec.rounds = 3;  // ignored by the loop; kept for the spec blob round-trip
  return spec;
}

/// One operator request with an explicit request tag.
net::NetFrame request_tagged(const std::string& endpoint, net::FrameKind kind,
                             std::uint64_t tag,
                             std::span<const std::uint8_t> payload = {}) {
  net::TcpConn conn =
      net::TcpConn::connect(net::parse_host_port(endpoint), net::Deadline::after_ms(5000));
  SUBFEDAVG_CHECK(conn.valid(), "cannot reach " << endpoint);
  SUBFEDAVG_CHECK(net::send_frame(conn, kind, tag, payload, net::Deadline::after_ms(5000)),
                  "request send failed");
  net::NetFrame reply;
  SUBFEDAVG_CHECK(net::recv_frame(conn, &reply, net::Deadline::after_ms(30000)),
                  "no reply from " << endpoint);
  return reply;
}

/// One operator request, fedctl-style: connect, send, await the reply.
net::NetFrame request(const std::string& endpoint, net::FrameKind kind,
                      std::span<const std::uint8_t> payload = {}) {
  return request_tagged(endpoint, kind, 7, payload);
}

std::string text_of(const net::NetFrame& frame) {
  return std::string(frame.payload.begin(), frame.payload.end());
}

std::vector<std::thread> spawn_fleet(const std::string& endpoint, int n) {
  std::vector<std::thread> fleet;
  for (int w = 0; w < n; ++w) {
    fleet.emplace_back([endpoint] {
      WorkerOptions wo;
      wo.connect = endpoint;
      wo.reconnect = 50;
      run_worker(wo);
    });
  }
  return fleet;
}

std::uint32_t read_u32(std::span<const std::uint8_t> bytes, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(bytes[at + i]) << (8 * i);
  return v;
}

/// Scope-exit teardown in the one order that cannot deadlock: stop the loop,
/// join its thread, DESTROY the loop (transport teardown sends kShutdown to
/// the fleet — that is the workers' stop signal), then join the fleet.
struct Teardown {
  std::unique_ptr<ServerLoop>& loop;
  std::thread& server;
  std::vector<std::thread>& fleet;
  ~Teardown() {
    if (loop) loop->request_stop();
    if (server.joinable()) server.join();
    loop.reset();
    for (std::thread& t : fleet) t.join();
  }
};

/// Records the cumulative ledger the driver hooks report, so the wire
/// kStatus counters can be cross-checked against observer ground truth.
class LedgerRecorder final : public RoundObserver {
 public:
  void on_round_end(const RoundEndInfo& info) override {
    cumulative_up_ += info.round_up_bytes;
    cumulative_down_ += info.round_down_bytes;
    by_round_.push_back({info.round, cumulative_up_, cumulative_down_});
  }

  struct Point {
    std::size_t round;
    std::uint64_t up;
    std::uint64_t down;
  };
  const std::vector<Point>& points() const noexcept { return by_round_; }

 private:
  std::uint64_t cumulative_up_ = 0;
  std::uint64_t cumulative_down_ = 0;
  std::vector<Point> by_round_;
};

TEST(ServerLoop, ServesStatusAndModelDuringLiveRoundsAndResumesAfterRestart) {
  const std::string checkpoint = fresh_path("loop.session");

  std::size_t stopped_at = 0;
  std::size_t status_round = 0;
  std::uint64_t status_up = 0;
  std::uint64_t status_down = 0;
  LedgerRecorder recorder;
  {
    // --- first life: serve until an operator has watched 3 rounds tick ----
    ServeOptions options;
    options.spec = serve_spec(checkpoint);
    auto loop = std::make_unique<ServerLoop>(options);
    std::vector<std::thread> fleet = spawn_fleet(loop->worker_endpoint(), 2);
    std::thread server;
    Teardown teardown{loop, server, fleet};
    const std::string requests_at = loop->request_endpoint();
    server = std::thread([&] { loop->run(&recorder); });

    // Poll kStatus while rounds run; stop once 3 have completed.
    for (;;) {
      const net::NetFrame reply = request(requests_at, net::FrameKind::kStatus);
      ASSERT_EQ(reply.kind, net::FrameKind::kReply);
      const JsonValue status = parse_json(text_of(reply));
      if (status.number_or("round", 0.0) >= 3.0) {
        status_round = static_cast<std::size_t>(status.at("round").number);
        status_up = static_cast<std::uint64_t>(status.at("up_bytes").number);
        status_down = static_cast<std::uint64_t>(status.at("down_bytes").number);
        EXPECT_EQ(status.number_or("resumed_from", -1.0), 0.0);
        EXPECT_GE(status.number_or("workers", 0.0), 2.0);
        EXPECT_GT(status.number_or("rounds_per_sec", 0.0), 0.0);
        EXPECT_EQ(status.string_or("algorithm", ""), "FedAvg");
        EXPECT_EQ(status.string_or("checkpoint_path", ""), checkpoint);
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }

    // The model endpoint serves decodable sections mid-federation:
    // u32 section count, then u32-length-prefixed encode_update blobs.
    const net::NetFrame model = request(requests_at, net::FrameKind::kGetModel);
    ASSERT_EQ(model.kind, net::FrameKind::kReply);
    ASSERT_GE(model.payload.size(), 8u);
    ASSERT_EQ(read_u32(model.payload, 0), 1u);
    const std::uint32_t len = read_u32(model.payload, 4);
    ASSERT_EQ(model.payload.size(), 8u + len);
    const StateDict global =
        decode_update(std::span<const std::uint8_t>(model.payload).subspan(8, len));
    EXPECT_GT(global.size(), 0u);

    // Full-model replies are stamped with the serving round (round + 1, so
    // never 0), and the stamp supports an ETag-style conditional fetch:
    // echoing it back with kModelConditionalTag set earns an empty
    // not-modified reply while the round holds, or a re-stamped full payload
    // once it advanced (rounds are ticking live here, so either is legal).
    EXPECT_GE(model.tag, 1u);
    const net::NetFrame cond =
        request_tagged(requests_at, net::FrameKind::kGetModel,
                       ServerLoop::kModelConditionalTag | model.tag);
    ASSERT_EQ(cond.kind, net::FrameKind::kReply);
    if (cond.payload.empty()) {
      EXPECT_EQ(cond.tag, model.tag);  // not modified
    } else {
      EXPECT_GT(cond.tag, model.tag);  // newer round, fresh stamp + payload
      EXPECT_EQ(read_u32(cond.payload, 0), 1u);
    }
    // Hammer the endpoint: replies keep decoding and stamps never regress.
    for (int i = 0; i < 6; ++i) {
      const net::NetFrame again = request(requests_at, net::FrameKind::kGetModel);
      ASSERT_EQ(again.kind, net::FrameKind::kReply);
      EXPECT_GE(again.tag, model.tag);
      EXPECT_EQ(read_u32(again.payload, 0), 1u);
    }

    // A bad client index is an error reply, not a hangup or a crash.
    const std::string bogus = "999";
    const net::NetFrame err = request(
        requests_at, net::FrameKind::kGetModel,
        std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(bogus.data()),
                                      bogus.size()));
    EXPECT_EQ(err.kind, net::FrameKind::kError);

    const net::NetFrame snap = request(requests_at, net::FrameKind::kCheckpointNow);
    ASSERT_EQ(snap.kind, net::FrameKind::kReply);
    EXPECT_EQ(text_of(snap), checkpoint);
    EXPECT_TRUE(std::filesystem::exists(checkpoint));

    const net::NetFrame bye = request(requests_at, net::FrameKind::kShutdown);
    ASSERT_EQ(bye.kind, net::FrameKind::kReply);
    EXPECT_EQ(text_of(bye), "stopping");
    server.join();
    stopped_at = loop->session().round();
    EXPECT_GE(stopped_at, 3u);
    // The round-stamped cache encodes the model at most once per round, no
    // matter how many kGetModel requests landed.
    EXPECT_GE(loop->model_encodes(), 1u);
    EXPECT_LE(loop->model_encodes(), loop->session().round() + 1);
  }

  // The wire counters must match the observer-reported ledger at the round
  // the status snapshot was taken (checked post-join: the recorder is quiet).
  bool matched = false;
  for (const LedgerRecorder::Point& p : recorder.points()) {
    if (p.round != status_round) continue;
    EXPECT_EQ(status_up, p.up);
    EXPECT_EQ(status_down, p.down);
    matched = true;
  }
  EXPECT_TRUE(matched) << "status round " << status_round << " not in the observer trace";

  {
    // --- second life: same spec, restored, round counter continues --------
    ServeOptions options;
    options.spec = serve_spec(checkpoint);
    options.max_rounds = 2;
    auto loop = std::make_unique<ServerLoop>(options);
    EXPECT_TRUE(loop->resumed());
    EXPECT_EQ(loop->resumed_from(), stopped_at);

    std::vector<std::thread> fleet = spawn_fleet(loop->worker_endpoint(), 2);
    std::thread server;  // unused: this life runs on the main thread
    Teardown teardown{loop, server, fleet};
    loop->run();
    EXPECT_EQ(loop->session().round(), stopped_at + 2);
    EXPECT_EQ(loop->rounds_this_process(), 2u);

    // Monotone served counters survive the restart: the status JSON still
    // parses and reports the continued round, not a reset one.
    const JsonValue status = parse_json(loop->status_json());
    EXPECT_EQ(static_cast<std::size_t>(status.at("round").number), stopped_at + 2);
    EXPECT_EQ(static_cast<std::size_t>(status.at("resumed_from").number), stopped_at);
    EXPECT_GE(static_cast<std::uint64_t>(status.at("up_bytes").number), status_up);
  }

  std::filesystem::remove(checkpoint);
}

// ---------------------------------------------------------------------------
// Telemetry over the request API: kMetrics, kMetricsTail, conditional kStatus

TEST(ServerLoop, ServesMetricsAndEventLogTailAcrossRestart) {
  const std::string checkpoint = fresh_path("telemetry.session");
  const std::string log_path = fresh_path("telemetry.jsonl");
  std::filesystem::remove(log_path + ".1");

  std::uint64_t first_life_cursor = 0;
  std::size_t stopped_at = 0;
  {
    // --- first life: poll the new endpoints while rounds tick -------------
    ServeOptions options;
    options.spec = serve_spec(checkpoint);
    options.telemetry_log = log_path;
    auto loop = std::make_unique<ServerLoop>(options);
    ASSERT_NE(loop->event_log(), nullptr);
    std::vector<std::thread> fleet = spawn_fleet(loop->worker_endpoint(), 2);
    std::thread server;
    Teardown teardown{loop, server, fleet};
    const std::string requests_at = loop->request_endpoint();
    server = std::thread([&] { loop->run(); });

    for (;;) {
      const net::NetFrame reply = request(requests_at, net::FrameKind::kStatus);
      ASSERT_EQ(reply.kind, net::FrameKind::kReply);
      if (parse_json(text_of(reply)).number_or("round", 0.0) >= 2.0) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }

    // kMetrics: the registry snapshot parses and reports the raised level
    // (--telemetry-log turned counters on for this process).
    const net::NetFrame metrics = request(requests_at, net::FrameKind::kMetrics);
    ASSERT_EQ(metrics.kind, net::FrameKind::kReply);
    const JsonValue snapshot = parse_json(text_of(metrics));
    ASSERT_TRUE(snapshot.is_object());
    EXPECT_EQ(snapshot.string_or("telemetry_level", ""), "counters");

    // Conditional kStatus: replies are stamped; echoing the stamp back with
    // the conditional bit earns an empty not-modified reply while the round
    // holds, or a newer-stamped payload once it advanced (rounds tick live).
    const net::NetFrame status = request(requests_at, net::FrameKind::kStatus);
    ASSERT_EQ(status.kind, net::FrameKind::kReply);
    EXPECT_GE(status.tag, 1u);
    const net::NetFrame cond =
        request_tagged(requests_at, net::FrameKind::kStatus,
                       ServerLoop::kModelConditionalTag | status.tag);
    ASSERT_EQ(cond.kind, net::FrameKind::kReply);
    if (cond.payload.empty()) {
      EXPECT_EQ(cond.tag, status.tag);
    } else {
      EXPECT_GT(cond.tag, status.tag);
      EXPECT_NO_THROW(parse_json(text_of(cond)));
    }

    // kMetricsTail pages the JSONL stream from 0: every line is valid JSON,
    // the lifecycle start record and at least one round record (with the
    // six-phase breakdown) are present, and the cursor lands at the end.
    std::string tailed;
    std::uint64_t cursor = 0;
    for (;;) {
      const std::string text = std::to_string(cursor);
      const net::NetFrame page = request_tagged(
          requests_at, net::FrameKind::kMetricsTail, 0,
          std::span<const std::uint8_t>(
              reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
      ASSERT_EQ(page.kind, net::FrameKind::kReply);
      if (page.payload.empty()) {
        EXPECT_GE(page.tag, cursor);
        cursor = page.tag;
        break;
      }
      tailed += text_of(page);
      cursor = page.tag;
    }
    first_life_cursor = cursor;
    EXPECT_NE(tailed.find("\"event\": \"start\""), std::string::npos);
    EXPECT_NE(tailed.find("\"event\": \"round\""), std::string::npos);
    EXPECT_NE(tailed.find("\"phases\": {\"sample\": "), std::string::npos);
    std::size_t start = 0;
    while (start < tailed.size()) {
      const std::size_t end = tailed.find('\n', start);
      ASSERT_NE(end, std::string::npos) << "tail chunks must be whole lines";
      EXPECT_NO_THROW(parse_json(tailed.substr(start, end - start)));
      start = end + 1;
    }

    const net::NetFrame bye = request(requests_at, net::FrameKind::kShutdown);
    ASSERT_EQ(bye.kind, net::FrameKind::kReply);
    server.join();
    stopped_at = loop->session().round();
  }

  {
    // --- second life: the log reopens and the full history replays --------
    ServeOptions options;
    options.spec = serve_spec(checkpoint);
    options.max_rounds = 2;
    options.telemetry_log = log_path;
    auto loop = std::make_unique<ServerLoop>(options);
    EXPECT_TRUE(loop->resumed());
    std::vector<std::thread> fleet = spawn_fleet(loop->worker_endpoint(), 2);
    std::thread server;  // unused: this life runs on the main thread
    Teardown teardown{loop, server, fleet};
    loop->run();

    // A reader from cursor 0 replays BOTH lives: the first life's start and
    // rounds survive the restart, the resume marker separates the lives, and
    // the second life's rounds continue the counter.
    telemetry::EventLog* log = loop->event_log();
    ASSERT_NE(log, nullptr);
    std::string all;
    std::uint64_t cursor = 0;
    while (cursor < log->end_cursor()) {
      std::uint64_t next = cursor;
      const std::string chunk = log->tail(cursor, 1 << 20, &next);
      ASSERT_GT(next, cursor);
      all += chunk;
      cursor = next;
    }
    EXPECT_NE(all.find("\"event\": \"start\""), std::string::npos);
    EXPECT_NE(all.find("\"event\": \"resume\""), std::string::npos);
    EXPECT_NE(all.find("\"event\": \"stop\""), std::string::npos);
    EXPECT_NE(all.find("\"event\": \"round\", \"round\": " +
                       std::to_string(stopped_at + 2)),
              std::string::npos)
        << "second-life rounds must continue the counter";

    // And the cursor an operator saved before the restart yields only newer
    // records: the resume marker and the second life, never the old start.
    std::uint64_t next = 0;
    std::string newer;
    cursor = first_life_cursor;
    while (cursor < log->end_cursor()) {
      const std::string chunk = log->tail(cursor, 1 << 20, &next);
      ASSERT_GT(next, cursor);
      newer += chunk;
      cursor = next;
    }
    EXPECT_EQ(newer.find("\"event\": \"start\""), std::string::npos);
    EXPECT_NE(newer.find("\"event\": \"resume\""), std::string::npos);
  }

  std::filesystem::remove(checkpoint);
  std::filesystem::remove(log_path);
  std::filesystem::remove(log_path + ".1");
}

}  // namespace
}  // namespace subfed
