// The sweep engine: axis parsing, cross-product expansion with deterministic
// seed assignment, thread-pool execution with failure isolation, the per-run
// JSON round-trip through the aggregation loader, and the mean ± std
// aggregation math behind the paper tables.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fl/sweep.h"
#include "util/check.h"
#include "util/json.h"
#include "util/logging.h"

namespace subfed {
namespace {

class SweepApi : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { set_log_level(LogLevel::kWarn); }

  /// A federation small enough that a run costs milliseconds.
  static ExperimentSpec tiny_spec() {
    ExperimentSpec spec;
    spec.dataset = "mnist";
    spec.clients = 4;
    spec.shard = 20;
    spec.test_per_class = 4;
    spec.rounds = 1;
    spec.epochs = 1;
    spec.sample = 0.5;
    spec.algo = "fedavg";
    spec.seed = 9;
    return spec;
  }
};

// --- axis parsing -----------------------------------------------------------

TEST_F(SweepApi, ParseAxisSplitsValues) {
  const SweepAxis axis = parse_axis("algo=subfedavg_un,fedavg,lotteryfl");
  EXPECT_EQ(axis.key, "algo");
  EXPECT_EQ(axis.values, (std::vector<std::string>{"subfedavg_un", "fedavg", "lotteryfl"}));
}

TEST_F(SweepApi, ParseAxisRejectsMalformedInput) {
  EXPECT_THROW(parse_axis("no-equals"), CheckError);
  EXPECT_THROW(parse_axis("=1,2"), CheckError);        // empty key
  EXPECT_THROW(parse_axis("alpha="), CheckError);      // no values
  EXPECT_THROW(parse_axis("alpha=0.1,,0.5"), CheckError);  // empty element
  EXPECT_THROW(parse_axis("alpha=0.1,0.5,"), CheckError);  // trailing comma
}

TEST_F(SweepApi, AddAxisRejectsDuplicateKeys) {
  SweepDescription description;
  description.add_axis("alpha=0.1,0.5");
  EXPECT_THROW(description.add_axis("alpha=0.9"), CheckError);
}

// --- expansion --------------------------------------------------------------

TEST_F(SweepApi, ExpandTakesCrossProductLastAxisFastest) {
  SweepDescription description;
  description.base = tiny_spec();
  description.add_axis("algo=fedavg,standalone");
  description.add_axis("alpha=0.1,0.5,0.9");
  description.add_axis("seed=1,2");
  EXPECT_EQ(description.total_runs(), 12u);

  const std::vector<SweepRun> runs = description.expand();
  ASSERT_EQ(runs.size(), 12u);
  EXPECT_EQ(runs[0].name, "algo=fedavg,alpha=0.1,seed=1");
  EXPECT_EQ(runs[1].name, "algo=fedavg,alpha=0.1,seed=2");   // last axis fastest
  EXPECT_EQ(runs[2].name, "algo=fedavg,alpha=0.5,seed=1");
  EXPECT_EQ(runs[6].name, "algo=standalone,alpha=0.1,seed=1");
  EXPECT_EQ(runs[11].name, "algo=standalone,alpha=0.9,seed=2");

  // Axis values land in the specs; untouched fields come from the base.
  EXPECT_EQ(runs[6].spec.algo, "standalone");
  EXPECT_DOUBLE_EQ(runs[6].spec.alpha, 0.1);
  EXPECT_EQ(runs[6].spec.seed, 1u);
  EXPECT_EQ(runs[6].spec.clients, 4u);
  EXPECT_EQ(runs[6].index, 6u);
  ASSERT_EQ(runs[6].assignment.size(), 3u);
  EXPECT_EQ(runs[6].assignment[0],
            (std::pair<std::string, std::string>{"algo", "standalone"}));

  // Algorithm hyper-parameter axes route through algo_params.
  SweepDescription params;
  params.base = tiny_spec();
  params.add_axis("algo.strict=0,1");
  const std::vector<SweepRun> param_runs = params.expand();
  ASSERT_EQ(param_runs.size(), 2u);
  EXPECT_EQ(param_runs[1].spec.algo_params.get_string("strict", ""), "1");
}

TEST_F(SweepApi, ExpandValidatesKeysAndValues) {
  SweepDescription unknown;
  unknown.add_axis("not_a_field=1,2");
  EXPECT_THROW(unknown.expand(), CheckError);

  SweepDescription bad_value;
  bad_value.add_axis("rounds=4,abc");
  EXPECT_THROW(bad_value.expand(), CheckError);
}

TEST_F(SweepApi, ExpandWithoutAxesYieldsTheBaseRun) {
  SweepDescription description;
  description.base = tiny_spec();
  const std::vector<SweepRun> runs = description.expand();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].name, "run");
  EXPECT_EQ(runs[0].spec.to_kv(), description.base.to_kv());
}

TEST_F(SweepApi, ReplicasAssignConsecutiveSeedsDeterministically) {
  SweepDescription description;
  description.base = tiny_spec();
  description.base.seed = 5;
  description.add_replicas(3);
  const std::vector<SweepRun> runs = description.expand();
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0].spec.seed, 5u);
  EXPECT_EQ(runs[1].spec.seed, 6u);
  EXPECT_EQ(runs[2].spec.seed, 7u);
  // Expansion is a pure function of the description.
  const std::vector<SweepRun> again = description.expand();
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].spec.to_kv(), again[i].spec.to_kv());
  }

  SweepDescription conflicting;
  conflicting.add_axis("seed=1,2");
  EXPECT_THROW(conflicting.add_replicas(2), CheckError);
  EXPECT_THROW(description.add_replicas(0), CheckError);
}

TEST_F(SweepApi, SweepFileSeparatesAxesFromBaseFields) {
  SweepDescription description;
  description.base = tiny_spec();
  description.apply_file(
      "# table sweep\n"
      "rounds=2\n"
      "algo=fedavg,standalone\n"
      "\n"
      "seed=1,2,3\n");
  EXPECT_EQ(description.base.rounds, 2u);
  ASSERT_EQ(description.axes.size(), 2u);
  EXPECT_EQ(description.axes[0].key, "algo");
  EXPECT_EQ(description.axes[1].values.size(), 3u);
  EXPECT_EQ(description.total_runs(), 6u);
}

TEST_F(SweepApi, RunFileNamesAreIndexedAndFilesystemSafe) {
  SweepDescription description;
  description.base = tiny_spec();
  description.add_axis("algo=fedavg,standalone");
  description.add_axis("seed=1,2");
  const std::vector<SweepRun> runs = description.expand();
  EXPECT_EQ(sweep_run_file_name(runs[0]), "00000-algo=fedavg__seed=1.json");
  EXPECT_EQ(sweep_run_file_name(runs[3]), "00003-algo=standalone__seed=2.json");

  SweepRun hostile;
  hostile.index = 1000;  // must sort after 999 lexicographically
  hostile.name = "out=a/b c,alpha=0.5";
  EXPECT_EQ(sweep_run_file_name(hostile), "01000-out=a_b_c__alpha=0.5.json");
}

// --- execution --------------------------------------------------------------

TEST_F(SweepApi, RunSweepIsolatesFailuresAndWritesJsonPerRun) {
  const std::string dir = ::testing::TempDir() + "/subfed_sweep_exec";
  std::filesystem::remove_all(dir);

  // `lotteryfl` parses as a spec value but no such algorithm is registered,
  // so that run fails at construction time — after the sweep started.
  SweepDescription description;
  description.base = tiny_spec();
  description.add_axis("algo=fedavg,lotteryfl,standalone");

  SweepOptions options;
  options.jobs = 2;
  options.out_dir = dir;
  options.echo_progress = false;
  const SweepSummary summary = run_sweep(description.expand(), options);

  ASSERT_EQ(summary.outcomes.size(), 3u);
  EXPECT_EQ(summary.workers, 2u);
  EXPECT_EQ(summary.num_ok(), 2u);
  EXPECT_EQ(summary.num_failed(), 1u);

  EXPECT_TRUE(summary.outcomes[0].ok);
  EXPECT_FALSE(summary.outcomes[1].ok);
  EXPECT_TRUE(summary.outcomes[2].ok);  // the sweep survived the failure
  EXPECT_NE(summary.outcomes[1].error.find("lotteryfl"), std::string::npos);
  EXPECT_TRUE(summary.outcomes[1].json_path.empty());

  // Successful runs wrote their JSON; the loader finds exactly those.
  EXPECT_TRUE(std::filesystem::exists(summary.outcomes[0].json_path));
  EXPECT_TRUE(std::filesystem::exists(summary.outcomes[2].json_path));
  const std::vector<SweepRecord> records = load_run_records(dir);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].spec.at("algo"), "fedavg");
  EXPECT_EQ(records[1].spec.at("algo"), "standalone");

  // In-memory records agree with what landed on disk.
  const SweepRecord memory = record_from_outcome(summary.outcomes[0]);
  EXPECT_EQ(memory.algorithm, records[0].algorithm);
  EXPECT_NEAR(memory.final_avg_accuracy, records[0].final_avg_accuracy, 1e-5);
  EXPECT_EQ(memory.up_bytes, records[0].up_bytes);

  EXPECT_THROW(record_from_outcome(summary.outcomes[1]), CheckError);

  // Re-running a smaller sweep into the same directory clears the stale
  // per-run JSONs (aggregation never blends two sweeps) but leaves files the
  // sweep did not create untouched.
  const std::string foreign = dir + "/unrelated.json";
  std::ofstream(foreign) << "{}";
  SweepDescription smaller;
  smaller.base = tiny_spec();
  smaller.add_axis("algo=standalone");
  run_sweep(smaller.expand(), options);
  EXPECT_TRUE(std::filesystem::exists(foreign));
  std::filesystem::remove(foreign);
  EXPECT_EQ(load_run_records(dir).size(), 1u);
}

TEST_F(SweepApi, RunSweepCachesSharedDataConfigurations) {
  // Three algorithms share one data configuration → one synthesis; adding a
  // 2-value seed axis doubles the distinct configurations.
  SweepDescription description;
  description.base = tiny_spec();
  description.add_axis("algo=fedavg,standalone,fedprox");

  SweepOptions options;
  options.jobs = 2;
  options.echo_progress = false;
  const SweepSummary shared = run_sweep(description.expand(), options);
  EXPECT_EQ(shared.num_ok(), 3u);
  EXPECT_EQ(shared.unique_datasets, 1u);

  description.add_replicas(2);
  const SweepSummary split = run_sweep(description.expand(), options);
  EXPECT_EQ(split.num_ok(), 6u);
  EXPECT_EQ(split.unique_datasets, 2u);

  // Sharing the dataset must not change results: the cached-data runs match
  // a direct execute_experiment of the same specs.
  for (const SweepRunOutcome& outcome : shared.outcomes) {
    ExperimentSpec spec = outcome.run.spec;
    spec.out.clear();
    const ExecutedRun direct = execute_experiment(spec);
    EXPECT_DOUBLE_EQ(direct.result.final_avg_accuracy,
                     outcome.result.final_avg_accuracy)
        << outcome.run.name;
  }
}

TEST_F(SweepApi, RunSweepUniquifiesCheckpointPathsAcrossRuns) {
  SweepDescription description;
  description.base = tiny_spec();
  description.base.checkpoint_every = 1;
  description.base.checkpoint_path = ::testing::TempDir() + "/subfed_shared.ckpt";
  description.add_replicas(2);

  SweepOptions options;
  options.jobs = 2;
  options.echo_progress = false;
  const SweepSummary summary = run_sweep(description.expand(), options);
  ASSERT_EQ(summary.num_ok(), 2u);
  // Each run snapshotted its own file, not a shared clobbered one.
  EXPECT_TRUE(std::filesystem::exists(::testing::TempDir() + "/subfed_shared-00000.ckpt"));
  EXPECT_TRUE(std::filesystem::exists(::testing::TempDir() + "/subfed_shared-00001.ckpt"));
  EXPECT_FALSE(std::filesystem::exists(::testing::TempDir() + "/subfed_shared.ckpt"));
}

TEST_F(SweepApi, RunSweepWithIdenticalSpecsIsDeterministic) {
  SweepDescription description;
  description.base = tiny_spec();
  description.add_replicas(2);

  SweepOptions options;
  options.jobs = 2;
  options.echo_progress = false;
  const SweepSummary first = run_sweep(description.expand(), options);
  options.jobs = 1;
  const SweepSummary second = run_sweep(description.expand(), options);
  ASSERT_EQ(first.num_ok(), 2u);
  ASSERT_EQ(second.num_ok(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_DOUBLE_EQ(first.outcomes[i].result.final_avg_accuracy,
                     second.outcomes[i].result.final_avg_accuracy)
        << "worker count changed a result";
  }
}

// --- aggregation ------------------------------------------------------------

SweepRecord make_record(const std::string& algo, const std::string& seed, double accuracy,
                        std::uint64_t bytes) {
  SweepRecord record;
  record.algorithm = algo;
  record.spec["algo"] = algo;
  record.spec["seed"] = seed;
  record.spec["out"] = "runs/" + algo + "-" + seed + ".json";  // bookkeeping noise
  record.final_avg_accuracy = accuracy;
  record.up_bytes = bytes;
  record.metrics["unstructured_pruned"] = 0.5;
  return record;
}

TEST_F(SweepApi, AggregateComputesMeanAndSampleStdOverSeeds) {
  const std::vector<SweepRecord> records = {
      make_record("fedavg", "1", 0.80, 100),
      make_record("fedavg", "2", 0.90, 100),
      make_record("fedavg", "3", 0.70, 100),
      make_record("standalone", "1", 0.60, 0),
  };
  AggregateOptions options;
  options.group_by = {"algo"};
  options.metrics = {"accuracy", "comm", "unstructured_pruned", "absent_metric"};
  const std::vector<AggregateRow> rows = aggregate_records(records, options);

  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].group, (std::vector<std::string>{"fedavg"}));
  EXPECT_EQ(rows[0].runs, 3u);
  const Summary& acc = rows[0].stats.at("accuracy");
  EXPECT_NEAR(acc.mean, 0.8, 1e-12);
  EXPECT_NEAR(acc.stddev, 0.1, 1e-12);  // sample stddev of {.8,.9,.7}
  EXPECT_EQ(acc.count, 3u);
  EXPECT_NEAR(rows[0].stats.at("comm").mean, 100.0, 1e-12);
  EXPECT_NEAR(rows[0].stats.at("unstructured_pruned").mean, 0.5, 1e-12);
  EXPECT_EQ(rows[0].stats.count("absent_metric"), 0u);

  EXPECT_EQ(rows[1].group, (std::vector<std::string>{"standalone"}));
  EXPECT_EQ(rows[1].runs, 1u);
  EXPECT_NEAR(rows[1].stats.at("accuracy").stddev, 0.0, 1e-12);
}

TEST_F(SweepApi, ResolveGroupByInfersVaryingKeysMinusReplicateAxis) {
  const std::vector<SweepRecord> records = {
      make_record("fedavg", "1", 0.8, 100),
      make_record("fedavg", "2", 0.8, 100),
      make_record("standalone", "1", 0.6, 0),
  };
  AggregateOptions options;  // group_by empty, over = "seed"
  // algo varies → grouped; seed is the replicate axis and `out` is
  // bookkeeping → excluded despite varying.
  EXPECT_EQ(resolve_group_by(records, options), (std::vector<std::string>{"algo"}));

  options.group_by = {"seed"};  // explicit keys always win
  EXPECT_EQ(resolve_group_by(records, options), (std::vector<std::string>{"seed"}));
}

TEST_F(SweepApi, AggregationTableRendersMeanPlusMinusStd) {
  const std::vector<SweepRecord> records = {
      make_record("fedavg", "1", 0.80, 100),
      make_record("fedavg", "2", 0.90, 100),
  };
  AggregateOptions options;
  options.group_by = {"algo"};
  options.metrics = {"accuracy"};
  const TablePrinter table = aggregation_table(aggregate_records(records, options), options);

  const std::string ascii = render_table(table, "ascii");
  EXPECT_NE(ascii.find("85.00% ± 7.07%"), std::string::npos);
  EXPECT_NE(ascii.find("algo"), std::string::npos);

  const std::string markdown = render_table(table, "markdown");
  EXPECT_NE(markdown.find("|---|"), std::string::npos);
  const std::string csv = render_table(table, "csv");
  EXPECT_NE(csv.find("algo,runs,accuracy"), std::string::npos);
  EXPECT_THROW(render_table(table, "latex"), CheckError);
}

// --- JSON round-trip --------------------------------------------------------

TEST_F(SweepApi, RunRecordRoundTripsThroughJsonFile) {
  ExperimentSpec spec = tiny_spec();
  spec.tag = "round \"trip\"";
  spec.algo_params.set_double("mu", 0.2);

  RunResult result;
  result.curve = {{1, 0.5}};
  result.final_avg_accuracy = 0.625;
  result.final_per_client = {0.5, 0.75};
  result.up_bytes = 1234;
  result.down_bytes = 567;
  result.simulated_seconds = 12.75;

  const std::string path = ::testing::TempDir() + "/subfed_record.json";
  write_run_result_json(path, spec, "FedAvg", result, {{"unstructured_pruned", 0.25}});

  const SweepRecord record = load_run_record(path);
  EXPECT_EQ(record.algorithm, "FedAvg");
  EXPECT_EQ(record.spec.at("dataset"), "mnist");
  EXPECT_EQ(record.spec.at("tag"), "round \"trip\"");
  EXPECT_EQ(record.spec.at("algo.mu"), "0.2");
  EXPECT_NEAR(record.final_avg_accuracy, 0.625, 1e-9);
  EXPECT_EQ(record.up_bytes, 1234u);
  EXPECT_EQ(record.down_bytes, 567u);
  EXPECT_EQ(record.total_bytes(), 1801u);
  EXPECT_NEAR(record.simulated_seconds, 12.75, 1e-9);
  EXPECT_NEAR(record.metrics.at("unstructured_pruned"), 0.25, 1e-9);

  // The spec text round-trips back into an identical ExperimentSpec.
  std::string kv;
  for (const auto& [key, value] : record.spec) kv += key + "=" + value + "\n";
  EXPECT_EQ(ExperimentSpec::from_kv(kv).to_kv(), spec.to_kv());

  EXPECT_THROW(load_run_record("/nonexistent/run.json"), CheckError);
}

TEST_F(SweepApi, RoundTimeAndCompressionAggregateIntoTables) {
  SweepRecord fast;
  fast.algorithm = "FedAvg";
  fast.spec = {{"algo", "fedavg"}, {"seed", "1"}};
  fast.up_bytes = 1000;
  fast.simulated_seconds = 2.0;
  fast.metrics["compression_ratio"] = 4.0;
  SweepRecord slow = fast;
  slow.spec["seed"] = "2";
  slow.simulated_seconds = 4.0;
  slow.metrics["compression_ratio"] = 2.0;

  AggregateOptions options;
  options.metrics = {"round_time", "compression_ratio"};
  options.group_by = resolve_group_by({fast, slow}, options);
  const std::vector<AggregateRow> rows = aggregate_records({fast, slow}, options);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0].stats.at("round_time").mean, 3.0);
  EXPECT_DOUBLE_EQ(rows[0].stats.at("compression_ratio").mean, 3.0);

  const std::string table =
      render_table(aggregation_table(rows, options), "markdown");
  EXPECT_NE(table.find("round_time"), std::string::npos);
  EXPECT_NE(table.find("3.0s"), std::string::npos);  // seconds formatting
}

TEST_F(SweepApi, TransportByQuantizeGridSweeps) {
  // The acceptance grid: transport × quantize through the sweep engine, with
  // the lossy codecs riding a materializing transport. Loopback and
  // subprocess agree bit-for-bit per codec; every run reports real bytes and
  // a nonzero simulated round time.
  SweepDescription description;
  description.base = tiny_spec();
  description.base.rounds = 2;
  description.add_axis("transport=loopback,subprocess");
  description.add_axis("quantize=none,fp16,int8");

  SweepOptions options;
  options.jobs = 2;
  options.out_dir.clear();
  options.echo_progress = false;
  const SweepSummary summary = run_sweep(description.expand(), options);
  ASSERT_EQ(summary.outcomes.size(), 6u);
  EXPECT_EQ(summary.num_failed(), 0u);

  for (std::size_t q = 0; q < 3; ++q) {
    const SweepRunOutcome& loopback = summary.outcomes[q];       // transport axis first
    const SweepRunOutcome& subprocess = summary.outcomes[3 + q]; // last axis fastest
    EXPECT_EQ(loopback.run.spec.quantize, subprocess.run.spec.quantize);
    EXPECT_EQ(loopback.result.final_avg_accuracy, subprocess.result.final_avg_accuracy)
        << loopback.run.name;
    EXPECT_EQ(loopback.result.total_bytes(), subprocess.result.total_bytes());
    EXPECT_GT(loopback.result.total_bytes(), 0u);
    EXPECT_GT(loopback.result.simulated_seconds, 0.0);
  }
  // Harder quantization, fewer bytes.
  EXPECT_LT(summary.outcomes[1].result.total_bytes(),
            summary.outcomes[0].result.total_bytes());  // fp16 < none
  EXPECT_LT(summary.outcomes[2].result.total_bytes(),
            summary.outcomes[1].result.total_bytes());  // int8 < fp16
}

TEST_F(SweepApi, JsonParserHandlesTheWriterGrammar) {
  const JsonValue doc = parse_json(
      "{\"a\": [1, 2.5, -3e2], \"s\": \"q\\\"\\n\\u0041\", \"b\": true, "
      "\"n\": null, \"o\": {\"k\": 1}}");
  ASSERT_TRUE(doc.is_object());
  ASSERT_EQ(doc.at("a").array.size(), 3u);
  EXPECT_DOUBLE_EQ(doc.at("a").array[2].number, -300.0);
  EXPECT_EQ(doc.at("s").string, "q\"\nA");
  EXPECT_TRUE(doc.at("b").boolean);
  EXPECT_EQ(doc.at("n").kind, JsonValue::Kind::kNull);
  EXPECT_DOUBLE_EQ(doc.at("o").number_or("k", 0.0), 1.0);
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_THROW(doc.at("missing"), CheckError);

  EXPECT_THROW(parse_json("{\"unterminated\": "), CheckError);
  EXPECT_THROW(parse_json("{} trailing"), CheckError);
  EXPECT_THROW(parse_json("{bad: 1}"), CheckError);
}

}  // namespace
}  // namespace subfed
