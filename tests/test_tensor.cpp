// Tensor and GEMM unit tests.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "tensor/gemm.h"
#include "tensor/tensor.h"
#include "util/check.h"
#include "util/rng.h"

namespace subfed {
namespace {

TEST(Shape, NumelAndRank) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s.numel(), 24u);
  EXPECT_EQ(s[1], 3u);
  EXPECT_EQ(Shape{}.numel(), 0u);
}

TEST(Shape, Equality) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_EQ(Shape({2, 3}).to_string(), "(2, 3)");
}

TEST(Tensor, ZeroInitialized) {
  Tensor t({3, 4});
  EXPECT_EQ(t.numel(), 12u);
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FillValueConstructor) {
  Tensor t({2, 2}, 3.5f);
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 3.5f);
}

TEST(Tensor, FromDataValidatesSize) {
  EXPECT_NO_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3, 4}));
  EXPECT_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3}), CheckError);
}

TEST(Tensor, IndexedAccessBounds) {
  Tensor t({2, 3});
  t.at2(1, 2) = 7.0f;
  EXPECT_EQ(t.at2(1, 2), 7.0f);
  EXPECT_THROW(t.at2(2, 0), CheckError);
  EXPECT_THROW(t[6], CheckError);
}

TEST(Tensor, At4Layout) {
  Tensor t({2, 3, 4, 5});
  t.at4(1, 2, 3, 4) = 9.0f;
  // NCHW row-major flat index.
  EXPECT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 9.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  t.reshape({3, 2});
  EXPECT_EQ(t.at2(2, 1), 6.0f);
  EXPECT_THROW(t.reshape({4, 2}), CheckError);
}

TEST(Tensor, ElementwiseOps) {
  Tensor a({3}, std::vector<float>{1, 2, 3});
  Tensor b({3}, std::vector<float>{4, 5, 6});
  EXPECT_EQ(add(a, b)[1], 7.0f);
  EXPECT_EQ(sub(b, a)[2], 3.0f);
  EXPECT_EQ(mul(a, b)[0], 4.0f);
  a.scale_(2.0f);
  EXPECT_EQ(a[2], 6.0f);
  a.axpy_(0.5f, b);
  EXPECT_EQ(a[0], 4.0f);  // 2 + 0.5·4
}

TEST(Tensor, SizeMismatchThrows) {
  Tensor a({3});
  Tensor b({4});
  EXPECT_THROW(a.add_(b), CheckError);
  EXPECT_THROW(a.mul_(b), CheckError);
  EXPECT_THROW(a.axpy_(1.0f, b), CheckError);
}

TEST(Tensor, Reductions) {
  Tensor t({4}, std::vector<float>{-3, 1, 0, 2});
  EXPECT_DOUBLE_EQ(t.sum(), 0.0);
  EXPECT_DOUBLE_EQ(t.mean(), 0.0);
  EXPECT_EQ(t.abs_max(), 3.0f);
  EXPECT_DOUBLE_EQ(t.squared_norm(), 14.0);
  EXPECT_EQ(t.count_zero(), 1u);
}

TEST(Tensor, RandomFills) {
  Rng rng(42);
  Tensor t({10000});
  t.fill_normal(rng, 1.0f, 2.0f);
  EXPECT_NEAR(t.mean(), 1.0, 0.1);
  double var = 0.0;
  for (std::size_t i = 0; i < t.numel(); ++i) {
    var += (t[i] - t.mean()) * (t[i] - t.mean());
  }
  var /= static_cast<double>(t.numel());
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);

  t.fill_uniform(rng, -1.0f, 1.0f);
  EXPECT_GE(t.abs_max(), 0.5f);
  EXPECT_LE(t.abs_max(), 1.0f);
}

TEST(Argmax, TiesToLowestIndex) {
  std::vector<float> v{1.0f, 3.0f, 3.0f, 2.0f};
  EXPECT_EQ(argmax(v), 1u);
}

// --- GEMM ------------------------------------------------------------------

// Reference O(n^3) triple loop for cross-checking all kernel variants.
std::vector<float> reference_gemm(const std::vector<float>& a, const std::vector<float>& b,
                                  std::size_t m, std::size_t k, std::size_t n) {
  std::vector<float> c(m * n, 0.0f);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      for (std::size_t j = 0; j < n; ++j) c[i * n + j] += a[i * k + p] * b[p * n + j];
    }
  }
  return c;
}

class GemmSizes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmSizes, MatchesReference) {
  const auto [m, k, n] = GetParam();
  Rng rng(7 + m * 100 + k * 10 + n);
  std::vector<float> a(m * k), b(k * n);
  for (auto& x : a) x = static_cast<float>(rng.normal());
  for (auto& x : b) x = static_cast<float>(rng.normal());

  const std::vector<float> expected = reference_gemm(a, b, m, k, n);
  std::vector<float> c(m * n, 99.0f);
  gemm(a.data(), b.data(), c.data(), m, k, n);
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], expected[i], 1e-4f);

  // Accumulating variant adds on top.
  gemm_accumulate(a.data(), b.data(), c.data(), m, k, n);
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], 2 * expected[i], 1e-4f);
}

TEST_P(GemmSizes, TransposedVariants) {
  const auto [m, k, n] = GetParam();
  Rng rng(13 + m + k + n);
  std::vector<float> a(m * k), b(k * n);
  for (auto& x : a) x = static_cast<float>(rng.normal());
  for (auto& x : b) x = static_cast<float>(rng.normal());
  const std::vector<float> expected = reference_gemm(a, b, m, k, n);

  // gemm_at_b: A stored transposed [k×m].
  std::vector<float> a_t(m * k);
  for (std::size_t i = 0; i < static_cast<std::size_t>(m); ++i) {
    for (std::size_t p = 0; p < static_cast<std::size_t>(k); ++p) {
      a_t[p * m + i] = a[i * k + p];
    }
  }
  std::vector<float> c1(m * n);
  gemm_at_b(a_t.data(), b.data(), c1.data(), m, k, n);
  for (std::size_t i = 0; i < c1.size(); ++i) EXPECT_NEAR(c1[i], expected[i], 1e-4f);

  // gemm_a_bt: B stored transposed [n×k].
  std::vector<float> b_t(k * n);
  for (std::size_t p = 0; p < static_cast<std::size_t>(k); ++p) {
    for (std::size_t j = 0; j < static_cast<std::size_t>(n); ++j) {
      b_t[j * k + p] = b[p * n + j];
    }
  }
  std::vector<float> c2(m * n);
  gemm_a_bt(a.data(), b_t.data(), c2.data(), m, k, n);
  for (std::size_t i = 0; i < c2.size(); ++i) EXPECT_NEAR(c2[i], expected[i], 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GemmSizes,
                         ::testing::Values(std::make_tuple(1, 1, 1),
                                           std::make_tuple(3, 5, 2),
                                           std::make_tuple(8, 8, 8),
                                           std::make_tuple(16, 25, 9),
                                           std::make_tuple(20, 150, 100),
                                           std::make_tuple(1, 64, 1)));

TEST(Im2Col, IdentityKernelGeometry) {
  // 1 channel, 3x3 image, 1x1 kernel: columns == image.
  ConvGeometry g{1, 3, 3, 1, 1, 0};
  std::vector<float> img{1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<float> cols(g.patch_size() * g.out_h() * g.out_w());
  im2col(img.data(), g, cols.data());
  EXPECT_EQ(cols, img);
}

TEST(Im2Col, KnownPatchExtraction) {
  // 1 channel 3x3, 2x2 kernel, stride 1 → 2x2 output, 4 patch rows.
  ConvGeometry g{1, 3, 3, 2, 1, 0};
  std::vector<float> img{1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<float> cols(g.patch_size() * g.out_h() * g.out_w());
  im2col(img.data(), g, cols.data());
  // Row 0 is the top-left element of each patch: 1,2,4,5.
  EXPECT_EQ(cols[0], 1.0f);
  EXPECT_EQ(cols[1], 2.0f);
  EXPECT_EQ(cols[2], 4.0f);
  EXPECT_EQ(cols[3], 5.0f);
  // Row 3 is the bottom-right element of each patch: 5,6,8,9.
  EXPECT_EQ(cols[12], 5.0f);
  EXPECT_EQ(cols[15], 9.0f);
}

TEST(Im2Col, PaddingProducesZeroHalo) {
  ConvGeometry g{1, 2, 2, 3, 1, 1};  // padded 3x3 kernel over 2x2 input
  std::vector<float> img{1, 2, 3, 4};
  std::vector<float> cols(g.patch_size() * g.out_h() * g.out_w());
  im2col(img.data(), g, cols.data());
  // First patch row (ky=0,kx=0) hits the padded halo for output (0,0).
  EXPECT_EQ(cols[0], 0.0f);
}

TEST(Col2Im, IsAdjointOfIm2Col) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining adjoint
  // property that conv backward relies on.
  ConvGeometry g{2, 6, 5, 3, 2, 1};
  Rng rng(3);
  const std::size_t img_n = g.in_channels * g.in_h * g.in_w;
  const std::size_t col_n = g.patch_size() * g.out_h() * g.out_w();
  std::vector<float> x(img_n), y(col_n), ax(col_n), aty(img_n);
  for (auto& v : x) v = static_cast<float>(rng.normal());
  for (auto& v : y) v = static_cast<float>(rng.normal());
  im2col(x.data(), g, ax.data());
  col2im(y.data(), g, aty.data());

  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < col_n; ++i) lhs += static_cast<double>(ax[i]) * y[i];
  for (std::size_t i = 0; i < img_n; ++i) rhs += static_cast<double>(x[i]) * aty[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

}  // namespace
}  // namespace subfed
