// MathBackend cross-backend equivalence and determinism.
//
// The naive backend (the seed's reference kernels) is the oracle: blocked and
// sparse must match it on every GEMM variant over odd/rectangular shapes,
// zero-dimension edges, and pruning-masked (mostly-zero) operands. Backends
// may differ from the oracle by floating-point contraction only, so
// comparisons use a tight relative tolerance; a FIXED backend across
// different math_threads values must be bit-identical — threading never
// reorders any output element's accumulation.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/model_zoo.h"
#include "nn/sgd.h"
#include "nn/trainer.h"
#include "tensor/backend.h"
#include "util/check.h"
#include "util/rng.h"

namespace subfed {
namespace {

// The pool must have several workers even on single-core CI runners or the
// math_threads determinism tests would never actually fan out. Runs before
// main(), i.e. before anything touches ThreadPool::global().
const bool kPoolEnvReady = [] {
  setenv("SUBFEDAVG_THREADS", "4", /*overwrite=*/0);
  return true;
}();

/// |got - want| within contraction-level error for a length-k reduction.
void expect_close(const std::vector<float>& want, const std::vector<float>& got,
                  const std::string& label) {
  ASSERT_EQ(want.size(), got.size()) << label;
  for (std::size_t i = 0; i < want.size(); ++i) {
    const double tol = 1e-4 * (1.0 + std::abs(static_cast<double>(want[i])));
    ASSERT_NEAR(want[i], got[i], tol) << label << " at " << i;
  }
}

std::vector<float> random_matrix(Rng& rng, std::size_t size, double density = 1.0) {
  std::vector<float> out(size);
  for (auto& x : out) {
    x = rng.bernoulli(density) ? static_cast<float>(rng.normal()) : 0.0f;
  }
  return out;
}

struct GemmCase {
  std::size_t m, k, n;
};

const GemmCase kShapes[] = {{1, 1, 1},   {3, 5, 7},    {4, 16, 16},  {5, 17, 33},
                            {13, 31, 63}, {64, 64, 64}, {10, 400, 120}};

/// Runs one variant on one backend. A/B are sized/laid out per variant:
/// nn: A[m×k], B[k×n] · tn: A[k×m], B[k×n] · nt: A[m×k], B[n×k].
std::vector<float> run_variant(const MathBackend& backend, int variant,
                               const std::vector<float>& a, const std::vector<float>& b,
                               const GemmCase& shape, bool accumulate) {
  // Accumulate targets start from a fixed nonzero pattern so C += is exercised.
  std::vector<float> c(shape.m * shape.n);
  for (std::size_t i = 0; i < c.size(); ++i) {
    c[i] = accumulate ? 0.25f * static_cast<float>(i % 7) : -99.0f;
  }
  switch (variant) {
    case 0: backend.gemm_nn(a.data(), b.data(), c.data(), shape.m, shape.k, shape.n,
                            accumulate); break;
    case 1: backend.gemm_tn(a.data(), b.data(), c.data(), shape.m, shape.k, shape.n,
                            accumulate); break;
    default: backend.gemm_nt(a.data(), b.data(), c.data(), shape.m, shape.k, shape.n,
                             accumulate); break;
  }
  return c;
}

void compare_backends_over(double density) {
  const MathBackend& naive = math_backend("naive");
  Rng rng(density < 1.0 ? 7 : 3);
  for (const GemmCase& shape : kShapes) {
    for (int variant = 0; variant < 3; ++variant) {
      const std::size_t a_size = shape.m * shape.k;  // same numel for tn ([k×m])
      const std::size_t b_size = variant == 2 ? shape.n * shape.k : shape.k * shape.n;
      // The weight-side operand carries the mask: A for nn/tn, B for nt.
      std::vector<float> a = random_matrix(rng, a_size, variant == 2 ? 1.0 : density);
      std::vector<float> b = random_matrix(rng, b_size, variant == 2 ? density : 1.0);
      for (const bool accumulate : {false, true}) {
        const std::vector<float> want = run_variant(naive, variant, a, b, shape, accumulate);
        for (const char* name : {"blocked", "sparse"}) {
          const std::vector<float> got =
              run_variant(math_backend(name), variant, a, b, shape, accumulate);
          expect_close(want, got,
                       std::string(name) + " variant " + std::to_string(variant) + " " +
                           std::to_string(shape.m) + "x" + std::to_string(shape.k) + "x" +
                           std::to_string(shape.n) + (accumulate ? " acc" : "") +
                           " density " + std::to_string(density));
        }
      }
    }
  }
}

TEST(BackendEquivalence, DenseOddAndRectangularShapes) { compare_backends_over(1.0); }

// 10% density forces the sparse backend through its CSR kernels (threshold
// 0.25); 30% exercises its dense fallback path.
TEST(BackendEquivalence, MaskedWeightsSparseAndFallback) {
  compare_backends_over(0.10);
  compare_backends_over(0.30);
}

TEST(BackendEquivalence, SparseWeightOnBSideOfNN) {
  // Linear::backward's dX = dY·W puts the pruned matrix on the B side of an
  // nn GEMM; the sparse backend must catch that case too.
  const MathBackend& naive = math_backend("naive");
  Rng rng(13);
  const GemmCase shape{10, 120, 400};
  const std::vector<float> a = random_matrix(rng, shape.m * shape.k, 1.0);
  const std::vector<float> b = random_matrix(rng, shape.k * shape.n, 0.1);
  for (const bool accumulate : {false, true}) {
    const std::vector<float> want = run_variant(naive, 0, a, b, shape, accumulate);
    for (const char* name : {"blocked", "sparse"}) {
      expect_close(want, run_variant(math_backend(name), 0, a, b, shape, accumulate),
                   std::string(name) + " nn sparse-B" + (accumulate ? " acc" : ""));
    }
  }
}

TEST(BackendEquivalence, ZeroDimensionEdges) {
  for (const char* name : {"naive", "blocked", "sparse"}) {
    const MathBackend& backend = math_backend(name);
    std::vector<float> a(8, 1.0f), b(8, 1.0f);
    // k == 0: C is zeroed without accumulate, untouched with.
    std::vector<float> c(6, 5.0f);
    backend.gemm_nn(a.data(), b.data(), c.data(), 2, 0, 3, /*accumulate=*/false);
    for (const float x : c) EXPECT_EQ(x, 0.0f) << name;
    std::fill(c.begin(), c.end(), 5.0f);
    backend.gemm_tn(a.data(), b.data(), c.data(), 2, 0, 3, /*accumulate=*/true);
    for (const float x : c) EXPECT_EQ(x, 5.0f) << name;
    // m == 0 / n == 0: nothing written, nothing crashes.
    backend.gemm_nn(a.data(), b.data(), c.data(), 0, 4, 2, false);
    backend.gemm_nt(a.data(), b.data(), c.data(), 2, 4, 0, false);
  }
}

TEST(BackendRegistry, NamesResolveAndUnknownThrows) {
  EXPECT_EQ(math_backend("naive").name(), "naive");
  EXPECT_EQ(math_backend("blocked").name(), "blocked");
  EXPECT_EQ(math_backend("sparse").name(), "sparse");
  EXPECT_TRUE(has_math_backend("blocked"));
  EXPECT_FALSE(has_math_backend("cublas"));
  EXPECT_THROW(math_backend("cublas"), CheckError);
  const std::vector<std::string> names = list_math_backends();
  EXPECT_EQ(names.size(), 3u);
  // The process default must be a registered backend (SUBFEDAVG_BACKEND may
  // legitimately select any of them).
  EXPECT_TRUE(has_math_backend(default_math_backend().name()));
}

// --- threading determinism --------------------------------------------------

TEST(BackendDeterminism, MathThreadsNeverChangeGemmBits) {
  // Big enough to clear the parallel-dispatch threshold (2·m·k·n ≥ 2^21).
  const GemmCase shape{256, 96, 64};
  Rng rng(11);
  for (const char* name : {"blocked", "sparse"}) {
    const MathBackend& backend = math_backend(name);
    for (int variant = 0; variant < 3; ++variant) {
      const std::vector<float> a = random_matrix(rng, shape.m * shape.k, 0.5);
      const std::vector<float> b =
          random_matrix(rng, variant == 2 ? shape.n * shape.k : shape.k * shape.n, 0.5);
      set_math_threads(1);
      const std::vector<float> single = run_variant(backend, variant, a, b, shape, false);
      set_math_threads(4);
      const std::vector<float> pooled = run_variant(backend, variant, a, b, shape, false);
      set_math_threads(0);
      for (std::size_t i = 0; i < single.size(); ++i) {
        ASSERT_EQ(single[i], pooled[i])
            << name << " variant " << variant << " diverges at " << i;
      }
    }
  }
}

TEST(BackendDeterminism, MathThreadsNeverChangeTrainingBits) {
  const auto train_states = [](std::size_t threads) {
    set_math_threads(threads);
    ModelSpec spec = ModelSpec::cnn5(10);
    spec.backend = "blocked";
    Rng init(21);
    Model model = spec.build_init(init);
    Rng data_rng(22);
    Tensor images({20, 1, 28, 28});
    images.fill_normal(data_rng, 0.0f, 1.0f);
    std::vector<std::int32_t> labels(20);
    for (std::size_t i = 0; i < labels.size(); ++i) {
      labels[i] = static_cast<std::int32_t>(data_rng.uniform_index(10));
    }
    Sgd optimizer(model.parameters(), {});
    Rng train_rng(23);
    train_local(model, optimizer, images, labels, {2, 10}, train_rng);
    set_math_threads(0);
    return model.state();
  };
  const StateDict one = train_states(1);
  const StateDict four = train_states(4);
  ASSERT_EQ(one.size(), four.size());
  for (std::size_t e = 0; e < one.size(); ++e) {
    EXPECT_EQ(one[e].first, four[e].first);
    EXPECT_TRUE(one[e].second == four[e].second)
        << "tensor '" << one[e].first << "' differs between math_threads=1 and 4";
  }
}

// --- layer-level equivalence ------------------------------------------------

/// Forward + backward of one conv configuration on every backend; outputs,
/// parameter gradients and input gradients must agree with naive.
void conv_all_backends(std::size_t in_c, std::size_t out_c, std::size_t hw,
                       std::size_t kernel, std::size_t stride, std::size_t pad,
                       double weight_density) {
  struct Pass {
    Tensor out, grad_in, dw, db;
  };
  const auto run = [&](const std::string& backend) {
    Rng rng(31);
    Conv2d conv("c", in_c, out_c, kernel, stride, pad);
    conv.init(rng);
    if (weight_density < 1.0) {
      Rng mask_rng(32);
      for (std::size_t i = 0; i < conv.weight().value.numel(); ++i) {
        if (!mask_rng.bernoulli(weight_density)) conv.weight().value[i] = 0.0f;
      }
    }
    conv.set_backend(&math_backend(backend));
    Tensor input({3, in_c, hw, hw});
    input.fill_normal(rng, 0.0f, 1.0f);
    Pass pass;
    pass.out = conv.forward(input, /*train=*/true);
    Tensor grad(pass.out.shape());
    grad.fill_normal(rng, 0.0f, 1.0f);
    pass.grad_in = conv.backward(grad);
    pass.dw = conv.weight().grad;
    pass.db = conv.bias().grad;
    return pass;
  };
  const Pass want = run("naive");
  for (const char* name : {"blocked", "sparse"}) {
    const Pass got = run(name);
    const std::string label = std::string("conv ") + name;
    expect_close({want.out.data(), want.out.data() + want.out.numel()},
                 {got.out.data(), got.out.data() + got.out.numel()}, label + " out");
    expect_close({want.grad_in.data(), want.grad_in.data() + want.grad_in.numel()},
                 {got.grad_in.data(), got.grad_in.data() + got.grad_in.numel()},
                 label + " grad_in");
    expect_close({want.dw.data(), want.dw.data() + want.dw.numel()},
                 {got.dw.data(), got.dw.data() + got.dw.numel()}, label + " dw");
    expect_close({want.db.data(), want.db.data() + want.db.numel()},
                 {got.db.data(), got.db.data() + got.db.numel()}, label + " db");
  }
}

TEST(BackendLayers, ConvAgreesAcrossBackends) {
  conv_all_backends(3, 6, 11, 5, 1, 0, 1.0);   // odd spatial, valid conv
  conv_all_backends(2, 4, 9, 3, 2, 1, 1.0);    // strided + padded
  conv_all_backends(3, 8, 12, 5, 1, 2, 0.15);  // masked weights → sparse path
}

TEST(BackendLayers, LinearAgreesAcrossBackends) {
  struct Pass {
    Tensor out, grad_in, dw, db;
  };
  const auto run = [&](const std::string& backend, double density) {
    Rng rng(41);
    Linear fc("f", 37, 23);
    fc.init(rng);
    if (density < 1.0) {
      Rng mask_rng(42);
      for (std::size_t i = 0; i < fc.weight().value.numel(); ++i) {
        if (!mask_rng.bernoulli(density)) fc.weight().value[i] = 0.0f;
      }
    }
    fc.set_backend(&math_backend(backend));
    Tensor input({5, 37});
    input.fill_normal(rng, 0.0f, 1.0f);
    Pass pass;
    pass.out = fc.forward(input, true);
    Tensor grad(pass.out.shape());
    grad.fill_normal(rng, 0.0f, 1.0f);
    pass.grad_in = fc.backward(grad);
    pass.dw = fc.weight().grad;
    pass.db = fc.bias().grad;
    return pass;
  };
  for (const double density : {1.0, 0.1}) {
    const Pass want = run("naive", density);
    for (const char* name : {"blocked", "sparse"}) {
      const Pass got = run(name, density);
      const std::string label = std::string("linear ") + name;
      expect_close({want.out.data(), want.out.data() + want.out.numel()},
                   {got.out.data(), got.out.data() + got.out.numel()}, label + " out");
      expect_close({want.grad_in.data(), want.grad_in.data() + want.grad_in.numel()},
                   {got.grad_in.data(), got.grad_in.data() + got.grad_in.numel()},
                   label + " grad_in");
      expect_close({want.dw.data(), want.dw.data() + want.dw.numel()},
                   {got.dw.data(), got.dw.data() + got.dw.numel()}, label + " dw");
      expect_close({want.db.data(), want.db.data() + want.db.numel()},
                   {got.db.data(), got.db.data() + got.db.numel()}, label + " db");
    }
  }
}

TEST(BackendLayers, BatchedIm2colMatchesPerSample) {
  const ConvGeometry g{2, 7, 7, 3, 1, 1};
  const std::size_t spatial = g.out_h() * g.out_w();
  const std::size_t batch = 3;
  Rng rng(51);
  std::vector<float> images(batch * g.in_channels * g.in_h * g.in_w);
  for (auto& x : images) x = static_cast<float>(rng.normal());

  std::vector<float> batched(g.patch_size() * batch * spatial);
  for (std::size_t n = 0; n < batch; ++n) {
    im2col_strided(images.data() + n * g.in_channels * g.in_h * g.in_w, g, batched.data(),
                   batch * spatial, n * spatial);
  }
  std::vector<float> single(g.patch_size() * spatial);
  for (std::size_t n = 0; n < batch; ++n) {
    im2col(images.data() + n * g.in_channels * g.in_h * g.in_w, g, single.data());
    for (std::size_t row = 0; row < g.patch_size(); ++row) {
      for (std::size_t s = 0; s < spatial; ++s) {
        ASSERT_EQ(single[row * spatial + s],
                  batched[row * batch * spatial + n * spatial + s])
            << "sample " << n << " row " << row << " col " << s;
      }
    }
  }
}

TEST(BackendPlumbing, ModelSpecBackendSelectionAndValidation) {
  ModelSpec spec = ModelSpec::lenet5(10);
  spec.backend = "naive";
  Rng rng(61);
  Model model = spec.build_init(rng);  // resolves the name; throws if unknown
  Tensor batch({2, 3, 32, 32});
  batch.fill_normal(rng, 0.0f, 1.0f);
  EXPECT_EQ(model.forward(batch, false).shape(), Shape({2, 10}));

  spec.backend = "no_such_backend";
  EXPECT_THROW(spec.build(), CheckError);
}

}  // namespace
}  // namespace subfed
