// Algorithm 2 (hybrid) on the paper's CIFAR configuration (LeNet-5), plus
// deeper-model coverage: the full structured+unstructured interplay on the
// architectures the paper evaluates and the CnnDeep extension.
#include <gtest/gtest.h>

#include "core/subfedavg_client.h"
#include "fl/driver.h"
#include "fl/subfedavg.h"
#include "metrics/flops.h"
#include "metrics/sparsity.h"
#include "util/logging.h"

namespace subfed {
namespace {

const FederatedData& cifar_data() {
  static FederatedData instance(DatasetSpec::cifar10(), [] {
    FederatedDataConfig config;
    config.partition = {6, 2, 25};
    config.test_per_class = 8;
    config.seed = 61;
    return config;
  }());
  return instance;
}

FlContext cifar_ctx() {
  set_log_level(LogLevel::kWarn);
  FlContext c;
  c.data = &cifar_data();
  c.spec = ModelSpec::lenet5(10);
  c.train = {2, 10};
  c.seed = 61;
  return c;
}

SubFedAvgConfig hybrid_config() {
  SubFedAvgConfig config;
  config.hybrid = true;
  config.unstructured = {0.0, 0.6, 0.0, 0.25};
  config.structured = {0.0, 0.5, 0.0, 0.3};
  return config;
}

TEST(HybridLeNet, FederationPrunesBothDimensions) {
  SubFedAvg alg(cifar_ctx(), hybrid_config());
  DriverConfig driver{/*rounds=*/6, /*sample_rate=*/0.5, 0, 61};
  const RunResult result = run_federation(alg, driver);

  EXPECT_GT(alg.average_structured_pruned(), 0.2);
  EXPECT_GT(alg.average_unstructured_pruned(), 0.3);
  // Functional bound only: 6 rounds with gate-always-open pruning on the
  // noisy CIFAR surrogate — well above 2-label chance, below convergence.
  EXPECT_GT(result.final_avg_accuracy, 0.35);
}

TEST(HybridLeNet, FlopReductionTracksChannelMask) {
  SubFedAvg alg(cifar_ctx(), hybrid_config());
  DriverConfig driver{6, 0.5, 0, 61};
  run_federation(alg, driver);

  for (std::size_t k = 0; k < alg.num_clients(); ++k) {
    const double channels_pruned = alg.client(k).structured_pruned();
    const ReductionReport r = alg.client_reduction(k);
    if (channels_pruned > 0.0) {
      EXPECT_GT(r.flop_reduction, 0.0) << "client " << k;
      // Channel pruning cuts FLOPs at least linearly in pruned channels.
      EXPECT_GE(r.flop_reduction, channels_pruned * 0.8) << "client " << k;
    }
  }
}

TEST(HybridLeNet, SparsityReportSeparatesConvAndFc) {
  SubFedAvg alg(cifar_ctx(), hybrid_config());
  DriverConfig driver{5, 0.5, 0, 61};
  run_federation(alg, driver);

  SubFedAvgClient& client = alg.client(0);
  Model model = cifar_ctx().spec.build();
  model.load_state(client.personal_state());
  ModelMask combined = client.combined_mask();
  const auto rows = layer_sparsity(model, combined);

  double fc_pruned = 0.0;
  std::size_t fc_rows = 0;
  for (const LayerSparsity& row : rows) {
    if (row.name.rfind("fc", 0) == 0 && row.name.find("weight") != std::string::npos) {
      fc_pruned += row.pruned_fraction();
      ++fc_rows;
    }
  }
  ASSERT_GT(fc_rows, 0u);
  // Unstructured pruning concentrated in FC weights.
  EXPECT_GT(fc_pruned / static_cast<double>(fc_rows), 0.2);
}

TEST(HybridLeNet, UploadMaskCoversConvAndFc) {
  SubFedAvg alg(cifar_ctx(), hybrid_config());
  DriverConfig driver{4, 0.5, 0, 61};
  run_federation(alg, driver);
  ModelMask mask = alg.client(1).combined_mask();
  EXPECT_NE(mask.find("conv1.weight"), nullptr);
  EXPECT_NE(mask.find("conv2.weight"), nullptr);
  EXPECT_NE(mask.find("fc1.weight"), nullptr);
  EXPECT_NE(mask.find("bn1.gamma"), nullptr);  // channel expansion covers BN
}

TEST(HybridDeep, SubFedAvgRunsOnCnnDeep) {
  // The 4-conv-block extension model works end to end under Algorithm 2.
  static FederatedData data(DatasetSpec::cifar10(), [] {
    FederatedDataConfig config;
    config.partition = {4, 2, 20};
    config.test_per_class = 6;
    config.seed = 62;
    return config;
  }());
  FlContext ctx;
  ctx.data = &data;
  ctx.spec = ModelSpec::cnn_deep(10);
  ctx.train = {1, 10};
  ctx.seed = 62;

  SubFedAvgConfig config = hybrid_config();
  SubFedAvg alg(ctx, config);
  DriverConfig driver{3, 0.75, 0, 62};
  const RunResult result = run_federation(alg, driver);
  EXPECT_GT(alg.average_structured_pruned(), 0.1);
  EXPECT_GT(result.final_avg_accuracy, 0.2);
  // All four blocks keep at least one channel.
  for (std::size_t k = 0; k < alg.num_clients(); ++k) {
    const ChannelMask& mask = alg.client(k).channel_mask();
    for (std::size_t b = 0; b < mask.num_blocks(); ++b) {
      std::size_t kept = 0;
      for (const auto bit : mask.block(b)) kept += (bit != 0);
      EXPECT_GE(kept, 1u) << "client " << k << " block " << b;
    }
  }
}

class HybridTargetSweep : public ::testing::TestWithParam<double> {};

TEST_P(HybridTargetSweep, StructuredFractionRespectsTarget) {
  const double target = GetParam();
  SubFedAvgConfig config;
  config.hybrid = true;
  config.unstructured = {0.0, 0.5, 0.0, 0.3};
  config.structured = {0.0, target, 0.0, 0.5};
  SubFedAvg alg(cifar_ctx(), config);
  DriverConfig driver{5, 0.75, 0, 61};
  run_federation(alg, driver);

  for (std::size_t k = 0; k < alg.num_clients(); ++k) {
    // Never overshoots the target (floor quantization can undershoot).
    EXPECT_LE(alg.client(k).structured_pruned(), target + 1e-9) << "client " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Targets, HybridTargetSweep, ::testing::Values(0.2, 0.4, 0.6));

}  // namespace
}  // namespace subfed
