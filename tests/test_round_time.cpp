// Synchronous-round wall-clock model (comm/round_time.h).
#include <gtest/gtest.h>

#include "comm/round_time.h"
#include "util/check.h"

namespace subfed {
namespace {

TEST(LinkFleet, UniformWhenSpreadIsOne) {
  LinkModel base;
  LinkFleet fleet(8, base, /*spread=*/1.0, Rng(1));
  for (std::size_t k = 0; k < fleet.size(); ++k) {
    EXPECT_DOUBLE_EQ(fleet.link(k).up_bytes_per_s, base.uplink_bytes_per_s);
    EXPECT_DOUBLE_EQ(fleet.link(k).down_bytes_per_s, base.downlink_bytes_per_s);
  }
}

TEST(LinkFleet, SpreadBoundsRates) {
  LinkModel base;
  const double spread = 5.0;
  LinkFleet fleet(64, base, spread, Rng(2));
  bool any_slow = false;
  for (std::size_t k = 0; k < fleet.size(); ++k) {
    EXPECT_LE(fleet.link(k).up_bytes_per_s, base.uplink_bytes_per_s + 1e-9);
    EXPECT_GE(fleet.link(k).up_bytes_per_s, base.uplink_bytes_per_s / spread - 1e-9);
    any_slow |= fleet.link(k).up_bytes_per_s < 0.5 * base.uplink_bytes_per_s;
  }
  EXPECT_TRUE(any_slow);  // the tail exists with 64 draws
}

TEST(LinkFleet, DeterministicPerSeed) {
  LinkModel base;
  LinkFleet a(8, base, 3.0, Rng(7));
  LinkFleet b(8, base, 3.0, Rng(7));
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_DOUBLE_EQ(a.link(k).up_bytes_per_s, b.link(k).up_bytes_per_s);
  }
  EXPECT_THROW(a.link(8), CheckError);
  EXPECT_THROW(LinkFleet(4, base, 0.5, Rng(1)), CheckError);
}

TEST(RoundSeconds, MaxOverParticipants) {
  LinkModel base{/*up=*/100.0, /*down=*/1000.0};
  LinkFleet fleet(3, base, 1.0, Rng(3));
  // Client 0: 100B up → 1s + 0.5s compute = 1.5s total.
  // Client 1: 1000B down → 1s, 50B up → 0.5s, no compute = 1.5s.
  // Client 2: dominates with 4s compute.
  std::vector<ClientRoundCost> costs{
      {0, 100, 0, 0.5},
      {1, 50, 1000, 0.0},
      {2, 0, 0, 4.0},
  };
  EXPECT_DOUBLE_EQ(round_seconds(fleet, costs), 4.0);
  costs.pop_back();
  EXPECT_DOUBLE_EQ(round_seconds(fleet, costs), 1.5);
}

TEST(RoundSeconds, EmptyRoundIsFree) {
  LinkFleet fleet(2, LinkModel{}, 1.0, Rng(4));
  EXPECT_DOUBLE_EQ(round_seconds(fleet, {}), 0.0);
}

TEST(RoundSeconds, UplinkDominatesSymmetricPayloads) {
  // The paper's asymmetry argument: with equal payloads, upload time is the
  // bottleneck because uplink is slower.
  LinkModel base;  // 1 MB/s up, 8 MB/s down
  LinkFleet fleet(1, base, 1.0, Rng(5));
  const std::size_t payload = 4 * 1024 * 1024;
  std::vector<ClientRoundCost> costs{{0, payload, payload, 0.0}};
  const double total = round_seconds(fleet, costs);
  const double up_only = static_cast<double>(payload) / base.uplink_bytes_per_s;
  EXPECT_GT(up_only / total, 0.85);  // upload is ≥85% of the round
}

TEST(KthArrival, PercentileOrderingAndDegenerateCases) {
  LinkModel base{/*up=*/100.0, /*down=*/1000.0};
  LinkFleet fleet(3, base, 1.0, Rng(3));
  // Completion times: client 0 → 1.5s, client 1 → 1.5s, client 2 → 4.0s.
  std::vector<ClientRoundCost> costs{
      {0, 100, 0, 0.5},
      {1, 50, 1000, 0.0},
      {2, 0, 0, 4.0},
  };
  EXPECT_DOUBLE_EQ(kth_arrival_seconds(fleet, costs, 1), 1.5);
  EXPECT_DOUBLE_EQ(kth_arrival_seconds(fleet, costs, 2), 1.5);
  EXPECT_DOUBLE_EQ(kth_arrival_seconds(fleet, costs, 3), round_seconds(fleet, costs));
  // k = 0 or k > participants degenerate to the synchronous max; empty free.
  EXPECT_DOUBLE_EQ(kth_arrival_seconds(fleet, costs, 0), 4.0);
  EXPECT_DOUBLE_EQ(kth_arrival_seconds(fleet, costs, 7), 4.0);
  EXPECT_DOUBLE_EQ(kth_arrival_seconds(fleet, {}, 2), 0.0);
}

TEST(KthArrival, ClientSecondsIsTheSharedBuildingBlock) {
  LinkModel base{/*up=*/100.0, /*down=*/1000.0};
  LinkFleet fleet(2, base, 1.0, Rng(9));
  const ClientRoundCost cost{1, 50, 1000, 0.25};
  EXPECT_DOUBLE_EQ(client_seconds(fleet, cost), 1.0 + 0.25 + 0.5);
  EXPECT_DOUBLE_EQ(round_seconds(fleet, {cost}), client_seconds(fleet, cost));
}

TEST(RoundSeconds, SmallerUpdatesShortenStragglerRounds) {
  // A pruned (smaller) update on the slowest client cuts the round time
  // proportionally — the mechanism behind the paper's time-to-accuracy gain.
  LinkModel base;
  LinkFleet fleet(4, base, 4.0, Rng(6));
  std::vector<ClientRoundCost> dense, pruned;
  for (std::size_t k = 0; k < 4; ++k) {
    dense.push_back({k, 1000000, 1000000, 0.1});
    pruned.push_back({k, 300000, 300000, 0.1});
  }
  EXPECT_LT(round_seconds(fleet, pruned), 0.5 * round_seconds(fleet, dense));
}

}  // namespace
}  // namespace subfed
