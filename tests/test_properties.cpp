// Property-style sweeps (TEST_P) over invariants that must hold for every
// configuration: pruning schedules, mask algebra, aggregation conservation,
// serialization round-trips, partition arithmetic.
#include <gtest/gtest.h>

#include <cmath>

#include "comm/serialize.h"
#include "core/aggregate.h"
#include "data/partition.h"
#include "nn/model_zoo.h"
#include "pruning/structured.h"
#include "pruning/unstructured.h"
#include "util/rng.h"

namespace subfed {
namespace {

// ---------- Pruning schedule properties ------------------------------------

class ScheduleSweep : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(ScheduleSweep, MonotoneBoundedConvergent) {
  const auto [rate, target] = GetParam();
  double pruned = 0.0;
  for (int i = 0; i < 500; ++i) {
    const double next = next_pruned_fraction(pruned, rate, target);
    EXPECT_GE(next, pruned);       // monotone
    EXPECT_LE(next, target + 1e-12);  // never overshoots
    pruned = next;
  }
  EXPECT_NEAR(pruned, target, 1e-6);  // converges
}

INSTANTIATE_TEST_SUITE_P(RatesAndTargets, ScheduleSweep,
                         ::testing::Combine(::testing::Values(0.05, 0.1, 0.2, 0.5),
                                            ::testing::Values(0.3, 0.5, 0.7, 0.9)));

// ---------- Magnitude-mask properties over target sweep ---------------------

class MagnitudeSweep : public ::testing::TestWithParam<double> {};

TEST_P(MagnitudeSweep, FractionMatchesTargetAndMaskIsBinary) {
  const double target = GetParam();
  Rng rng(static_cast<std::uint64_t>(target * 1000));
  Model m = ModelSpec::lenet5(10).build_init(rng);
  ModelMask ones = ModelMask::ones_like(m, MaskScope::kAllPrunable);
  ModelMask pruned = derive_magnitude_mask(m, ones, target);

  EXPECT_NEAR(pruned.pruned_fraction(), target, 0.01);
  for (const auto& [name, mask] : pruned) {
    for (std::size_t i = 0; i < mask.numel(); ++i) {
      EXPECT_TRUE(mask[i] == 0.0f || mask[i] == 1.0f);
    }
  }
  // Kept weights dominate pruned weights in magnitude per layer: the largest
  // pruned |w| cannot exceed the smallest kept |w| within a tensor.
  for (const auto& [name, mask] : pruned) {
    const Tensor* w = nullptr;
    for (Parameter* p : m.parameters()) {
      if (p->name == name) w = &p->value;
    }
    ASSERT_NE(w, nullptr);
    float max_pruned = 0.0f, min_kept = 1e30f;
    for (std::size_t i = 0; i < mask.numel(); ++i) {
      const float a = std::fabs((*w)[i]);
      if (mask[i] == 0.0f) {
        max_pruned = std::max(max_pruned, a);
      } else {
        min_kept = std::min(min_kept, a);
      }
    }
    EXPECT_LE(max_pruned, min_kept + 1e-6f) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Targets, MagnitudeSweep,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9));

// ---------- Channel-mask properties -----------------------------------------

class ChannelSweep : public ::testing::TestWithParam<double> {};

TEST_P(ChannelSweep, ExpansionConsistentWithCensus) {
  const double target = GetParam();
  Rng rng(static_cast<std::uint64_t>(target * 977));
  Model m = ModelSpec::lenet5(10).build_init(rng);
  ChannelMask mask = derive_channel_mask(m, ChannelMask::ones_like(m), target);

  // Census identity: total = kept + pruned.
  EXPECT_EQ(mask.total_channels(),
            mask.kept_channels() + static_cast<std::size_t>(std::llround(
                                       mask.pruned_fraction() * mask.total_channels())));

  // Expanded mask zero-set grows with the channel pruned fraction.
  ModelMask expanded = mask.to_model_mask(m);
  if (target > 0.0 && mask.pruned_fraction() > 0.0) {
    EXPECT_GT(expanded.pruned_fraction(), 0.0);
  }
  // Applying the expansion twice is idempotent.
  expanded.apply_to_weights(m);
  const StateDict once = m.state();
  expanded.apply_to_weights(m);
  const StateDict twice = m.state();
  for (std::size_t e = 0; e < once.size(); ++e) {
    EXPECT_EQ(once[e].second, twice[e].second);
  }
}

INSTANTIATE_TEST_SUITE_P(Targets, ChannelSweep, ::testing::Values(0.0, 0.2, 0.5, 0.8));

// ---------- Aggregation conservation properties ------------------------------

class AggregateSweep : public ::testing::TestWithParam<int> {};

TEST_P(AggregateSweep, OutputWithinClientEnvelopeAndMaskRespected) {
  const int num_clients = GetParam();
  Rng rng(100 + num_clients);
  Model reference = ModelSpec::cnn5(10).build_init(rng);
  const StateDict prev = reference.state();

  std::vector<ClientUpdate> updates;
  for (int k = 0; k < num_clients; ++k) {
    Rng crng = rng.split("client", k);
    Model m = ModelSpec::cnn5(10).build_init(crng);
    ModelMask mask = ModelMask::ones_like(m, MaskScope::kAllPrunable);
    mask = derive_magnitude_mask(m, mask, 0.3 + 0.1 * (k % 3));
    mask.apply_to_weights(m);
    updates.push_back({m.state(), mask, 100});
  }

  const StateDict merged = sub_fedavg_aggregate(updates, prev);
  for (std::size_t e = 0; e < merged.size(); ++e) {
    const auto& [name, tensor] = merged[e];
    for (std::size_t i = 0; i < tensor.numel(); ++i) {
      // Every output entry lies within [min, max] over {clients' kept values,
      // previous global} — averaging cannot extrapolate.
      float lo = prev[e].second[i], hi = prev[e].second[i];
      for (const ClientUpdate& u : updates) {
        const float v = u.state[e].second[i];
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      EXPECT_GE(tensor[i], lo - 1e-5f) << name;
      EXPECT_LE(tensor[i], hi + 1e-5f) << name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ClientCounts, AggregateSweep, ::testing::Values(1, 2, 5, 9));

// ---------- Serialization round-trip sweep -----------------------------------

class SerializeSweep : public ::testing::TestWithParam<double> {};

TEST_P(SerializeSweep, RoundTripAtEverySparsity) {
  const double target = GetParam();
  Rng rng(static_cast<std::uint64_t>(target * 31337) + 7);
  Model m = ModelSpec::cnn5(10).build_init(rng);
  ModelMask mask = ModelMask::ones_like(m, MaskScope::kAllPrunable);
  if (target > 0.0) mask = derive_magnitude_mask(m, mask, target);
  mask.apply_to_weights(m);
  const StateDict state = m.state();

  const StateDict decoded = decode_update(encode_update(state, &mask));
  ASSERT_EQ(decoded.size(), state.size());
  for (std::size_t e = 0; e < state.size(); ++e) {
    EXPECT_EQ(decoded[e].second, state[e].second) << state[e].first;
  }
  // Payload shrinks monotonically with sparsity (checked against the dense
  // encoding; bitmaps round up per covered tensor, hence the num_entries
  // slack).
  EXPECT_LE(payload_bytes(state, &mask),
            payload_bytes(state, nullptr) + (mask.covered() + 7) / 8 +
                mask.num_entries());
}

INSTANTIATE_TEST_SUITE_P(Sparsities, SerializeSweep,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 0.95));

// ---------- Partition arithmetic sweep ----------------------------------------

class PartitionSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(PartitionSweep, ExactCoverageAndClientSizes) {
  const auto [clients, shards, shard_size] = GetParam();
  const DatasetSpec spec = DatasetSpec::mnist();
  ShardPartitioner part(spec,
                        {static_cast<std::size_t>(clients),
                         static_cast<std::size_t>(shards),
                         static_cast<std::size_t>(shard_size)},
                        Rng(clients * 100 + shards));

  std::size_t total = 0;
  for (std::size_t k = 0; k < part.num_clients(); ++k) {
    EXPECT_EQ(part.client(k).examples.size(),
              static_cast<std::size_t>(shards) * shard_size);
    total += part.client(k).examples.size();
  }
  EXPECT_EQ(total, static_cast<std::size_t>(clients) * shards * shard_size);
  // Every example index is within the per-class pool bound.
  for (std::size_t k = 0; k < part.num_clients(); ++k) {
    for (const ExampleRef& ref : part.client(k).examples) {
      EXPECT_LT(ref.index, part.pool_per_class());
      EXPECT_LT(static_cast<std::size_t>(ref.label), spec.num_classes);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, PartitionSweep,
                         ::testing::Values(std::make_tuple(5, 2, 20),
                                           std::make_tuple(10, 2, 50),
                                           std::make_tuple(7, 3, 13),
                                           std::make_tuple(20, 2, 100),
                                           std::make_tuple(1, 1, 10)));

// ---------- Mask algebra properties -------------------------------------------

class MaskAlgebraSweep : public ::testing::TestWithParam<double> {};

TEST_P(MaskAlgebraSweep, IntersectionIsCommutativeIdempotentAndTightens) {
  const double target = GetParam();
  Rng rng(static_cast<std::uint64_t>(target * 555) + 3);
  Model m = ModelSpec::cnn5(10).build_init(rng);
  ModelMask a = derive_magnitude_mask(m, ModelMask::ones_like(m, MaskScope::kAllPrunable),
                                      target);
  // Re-randomize and derive an unrelated mask b.
  for (Parameter* p : m.parameters()) {
    Rng r = rng.split(p->name);
    p->value.fill_normal(r, 0.0f, 1.0f);
  }
  ModelMask b = derive_magnitude_mask(m, ModelMask::ones_like(m, MaskScope::kAllPrunable),
                                      target);

  const ModelMask ab = a.intersected(b);
  const ModelMask ba = b.intersected(a);
  EXPECT_EQ(ModelMask::hamming_distance(ab, ba), 0.0);                 // commutative
  EXPECT_EQ(ModelMask::hamming_distance(ab, ab.intersected(ab)), 0.0); // idempotent
  EXPECT_GE(ab.pruned_fraction(), a.pruned_fraction() - 1e-12);        // tightens
  EXPECT_GE(ab.pruned_fraction(), b.pruned_fraction() - 1e-12);
  // Jaccard symmetric.
  EXPECT_DOUBLE_EQ(ModelMask::jaccard_overlap(a, b), ModelMask::jaccard_overlap(b, a));
}

INSTANTIATE_TEST_SUITE_P(Targets, MaskAlgebraSweep, ::testing::Values(0.2, 0.5, 0.8));

}  // namespace
}  // namespace subfed
