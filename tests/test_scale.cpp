// Scale correctness: the lazy client store must be an invisible optimization.
//
//   * lazy (client_cache > 0) ≡ eager (client_cache == 0) bit-identity for
//     every registry algorithm — curves, per-client accuracies, byte ledger,
//     and the full checkpoint container byte-for-byte;
//   * spill/refault determinism under a cache small enough to thrash, across
//     a mid-run save/restore;
//   * data-level tensor equality between residency modes (shards and
//     dirichlet partitions), plus concurrent lazy access;
//   * the event-driven round loop (arrivals/dwell): deterministic per seed,
//     arrival-bounded sampling, drained-population accounting, and the spec
//     validation rules guarding it.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "data/client_data.h"
#include "fl/checkpoint.h"
#include "fl/experiment.h"
#include "fl/registry.h"
#include "fl/subfedavg.h"
#include "serve/session.h"
#include "util/check.h"

namespace subfed {
namespace {

ExperimentSpec base_spec(const std::string& algo) {
  ExperimentSpec spec;
  spec.dataset = "mnist";
  spec.clients = 6;
  spec.shard = 20;
  spec.test_per_class = 4;
  spec.epochs = 1;
  spec.rounds = 3;
  spec.sample = 0.5;
  spec.eval_every = 1;
  spec.seed = 11;
  spec.algo = algo;
  return spec;
}

std::vector<std::uint8_t> checkpoint_of(FederationSession& session) {
  return encode_state_sections(session.algorithm().name(),
                               session.algorithm().checkpoint_state());
}

void expect_identical(const RunResult& a, const RunResult& b, const std::string& what) {
  ASSERT_EQ(a.curve.size(), b.curve.size()) << what;
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_EQ(a.curve[i].round, b.curve[i].round) << what;
    EXPECT_EQ(a.curve[i].avg_accuracy, b.curve[i].avg_accuracy) << what << " round "
                                                                << a.curve[i].round;
  }
  EXPECT_EQ(a.final_avg_accuracy, b.final_avg_accuracy) << what;
  EXPECT_EQ(a.final_per_client, b.final_per_client) << what;
  EXPECT_EQ(a.up_bytes, b.up_bytes) << what;
  EXPECT_EQ(a.down_bytes, b.down_bytes) << what;
  EXPECT_EQ(a.dropped_clients, b.dropped_clients) << what;
  EXPECT_EQ(a.skipped_rounds, b.skipped_rounds) << what;
  EXPECT_EQ(a.simulated_seconds, b.simulated_seconds) << what;
}

// --- lazy ≡ eager across the whole registry ---------------------------------

TEST(LazyStore, BitIdenticalToEagerForEveryRegistryAlgorithm) {
  for (const std::string& algo : list_algorithms()) {
    ExperimentSpec eager = base_spec(algo);
    ExperimentSpec lazy = base_spec(algo);
    lazy.client_cache = 2;  // far below the 6-client population: real thrash

    auto eager_session = FederationSession::from_spec(eager);
    const RunResult eager_result = eager_session->run_to_completion();
    auto lazy_session = FederationSession::from_spec(lazy);
    const RunResult lazy_result = lazy_session->run_to_completion();

    expect_identical(eager_result, lazy_result, algo);
    EXPECT_EQ(checkpoint_of(*eager_session), checkpoint_of(*lazy_session))
        << algo << ": checkpoint container diverged between residency modes";
  }
}

// --- eviction / refault determinism -----------------------------------------

TEST(LazyStore, ThrashingCacheSurvivesSaveRestoreBitExactly) {
  ExperimentSpec spec = base_spec("subfedavg_un");
  spec.rounds = 4;
  spec.client_cache = 1;  // every acquire evicts someone: maximum spill churn

  auto straight = FederationSession::from_spec(spec);
  for (int r = 0; r < 4; ++r) EXPECT_TRUE(straight->advance_round());
  const double straight_acc = straight->evaluate();

  const std::string path = "test_scale_thrash.ckpt";
  auto first = FederationSession::from_spec(spec);
  for (int r = 0; r < 2; ++r) EXPECT_TRUE(first->advance_round());
  first->save(path);
  auto resumed = FederationSession::from_spec(spec);
  resumed->restore(path);
  std::remove(path.c_str());
  for (int r = 0; r < 2; ++r) EXPECT_TRUE(resumed->advance_round());
  const double resumed_acc = resumed->evaluate();

  EXPECT_EQ(straight_acc, resumed_acc);
  EXPECT_EQ(checkpoint_of(*straight), checkpoint_of(*resumed))
      << "mid-run save/restore under a thrashing cache diverged";

  // The cache really was thrashing: clients came back from the spill store.
  auto* sub = dynamic_cast<SubFedAvg*>(&straight->algorithm());
  ASSERT_NE(sub, nullptr);
  EXPECT_GT(sub->client_refaults(), 0u);
}

// --- data-level equality ------------------------------------------------------

TEST(LazyData, TensorsMatchEagerAcrossPartitioners) {
  for (const std::string& partition : {std::string("shards"), std::string("dirichlet")}) {
    ExperimentSpec spec = base_spec("fedavg");
    spec.clients = 8;
    spec.partition = partition;
    spec.alpha = 0.5;

    FederatedData eager(spec.dataset_spec(), spec.data_config());
    FederatedDataConfig lazy_config = spec.data_config();
    lazy_config.client_cache = 3;
    FederatedData lazy(spec.dataset_spec(), lazy_config);

    for (std::size_t k = 0; k < eager.num_clients(); ++k) {
      const ClientDataPtr e = eager.client_ptr(k);
      const ClientDataPtr l = lazy.client_ptr(k);
      EXPECT_EQ(e->train_images, l->train_images) << partition << " client " << k;
      EXPECT_EQ(e->train_labels, l->train_labels) << partition << " client " << k;
      EXPECT_EQ(e->val_images, l->val_images) << partition << " client " << k;
      EXPECT_EQ(e->val_labels, l->val_labels) << partition << " client " << k;
      EXPECT_EQ(e->labels_present, l->labels_present) << partition << " client " << k;
      ASSERT_EQ(e->test.size(), l->test.size()) << partition << " client " << k;
      for (std::size_t s = 0; s < e->test.size(); ++s) {
        EXPECT_EQ(e->test[s]->images, l->test[s]->images) << partition << " client " << k;
      }
    }
    // 8 clients through a 3-slot cache: the LRU must actually have evicted.
    EXPECT_GT(lazy.cache_evictions(), 0u) << partition;
    EXPECT_EQ(eager.cache_evictions(), 0u) << partition;
  }
}

TEST(LazyData, ConcurrentClientPtrAccessIsSafeAndPinned) {
  ExperimentSpec spec = base_spec("fedavg");
  spec.clients = 8;
  FederatedDataConfig config = spec.data_config();
  config.client_cache = 2;
  FederatedData data(spec.dataset_spec(), config);

  // Reference sizes, synthesized single-threaded.
  std::vector<std::size_t> train_sizes(data.num_clients());
  for (std::size_t k = 0; k < data.num_clients(); ++k) {
    train_sizes[k] = data.client_ptr(k)->train_labels.size();
  }

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&data, &train_sizes, t] {
      for (int pass = 0; pass < 3; ++pass) {
        for (std::size_t k = 0; k < data.num_clients(); ++k) {
          // Stagger the walk so threads fight over different LRU slots.
          const std::size_t c = (k + static_cast<std::size_t>(t)) % data.num_clients();
          const ClientDataPtr held = data.client_ptr(c);
          EXPECT_EQ(held->train_labels.size(), train_sizes[c]);
          EXPECT_GT(held->test_size(), 0u);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
}

// --- event-driven rounds ------------------------------------------------------

ExperimentSpec event_spec() {
  ExperimentSpec spec = base_spec("fedavg");
  spec.clients = 8;
  spec.sample = 0.5;
  spec.arrivals = 3.0;  // ~3 arrivals per simulated second
  return spec;
}

TEST(EventRounds, DeterministicPerSeedAndBoundedByArrivals) {
  const ExperimentSpec spec = event_spec();
  auto a = FederationSession::from_spec(spec);
  auto b = FederationSession::from_spec(spec);

  std::size_t prev_arrived = 0;
  for (int r = 0; r < 5; ++r) {
    EXPECT_TRUE(a->advance_round());
    EXPECT_TRUE(b->advance_round());
    // Without dwell, presence only grows, and never past the population.
    EXPECT_GE(a->arrived_clients(), prev_arrived);
    EXPECT_LE(a->arrived_clients(), spec.clients);
    EXPECT_GT(a->arrived_clients(), 0u);
    prev_arrived = a->arrived_clients();
    EXPECT_EQ(a->arrived_clients(), b->arrived_clients());
  }
  EXPECT_EQ(a->evaluate(), b->evaluate());
  EXPECT_EQ(checkpoint_of(*a), checkpoint_of(*b));
  // Rounds before the first arrival fast-forward the clock, so simulated time
  // moved even though the byte-ledger round model contributes separately.
  EXPECT_GT(a->progress().simulated_seconds, 0.0);
}

TEST(EventRounds, DwellDrainsThePopulationIntoSkippedRounds) {
  ExperimentSpec spec = event_spec();
  spec.dwell = 1e-6;  // arrivals depart almost immediately: population drains
  auto session = FederationSession::from_spec(spec);

  std::size_t advanced = 0;
  std::size_t skipped = 0;
  // One arrival serves at most one round here, so 8 clients cannot fill 12.
  for (int r = 0; r < 12; ++r) {
    if (session->advance_round()) {
      ++advanced;
    } else {
      ++skipped;
    }
  }
  EXPECT_GT(advanced, 0u);
  EXPECT_GT(skipped, 0u);
  EXPECT_EQ(session->progress().skipped_rounds, skipped);
  EXPECT_EQ(session->round(), 12u);  // skipped rounds still count rounds
  EXPECT_EQ(session->arrived_clients(), 0u);
}

TEST(EventRounds, EventSessionsRefuseCheckpointing) {
  auto session = FederationSession::from_spec(event_spec());
  EXPECT_TRUE(session->advance_round());
  EXPECT_THROW(session->save("test_scale_event.ckpt"), CheckError);
  EXPECT_THROW(session->restore("test_scale_event.ckpt"), CheckError);
}

// --- spec plumbing ------------------------------------------------------------

TEST(ScaleSpec, KnobsRoundTripThroughKv) {
  ExperimentSpec spec = base_spec("fedavg");
  spec.client_cache = 7;
  spec.arrivals = 2.5;
  spec.dwell = 1.5;
  const ExperimentSpec back = ExperimentSpec::from_kv(spec.to_kv());
  EXPECT_EQ(back.client_cache, 7u);
  EXPECT_EQ(back.arrivals, 2.5);
  EXPECT_EQ(back.dwell, 1.5);
  EXPECT_EQ(back.to_kv(), spec.to_kv());
}

TEST(ScaleSpec, ValidateRejectsInconsistentEventKnobs) {
  ExperimentSpec spec = base_spec("fedavg");
  spec.dwell = 1.0;  // dwell without arrivals is meaningless
  EXPECT_THROW(spec.validate(), CheckError);

  spec = base_spec("fedavg");
  spec.arrivals = -1.0;
  EXPECT_THROW(spec.validate(), CheckError);

  spec = base_spec("fedavg");
  spec.arrivals = 2.0;
  spec.checkpoint_every = 1;  // event sessions do not checkpoint yet
  EXPECT_THROW(spec.validate(), CheckError);

  spec = base_spec("fedavg");
  spec.arrivals = 2.0;
  spec.serve = 1;  // resident service still runs the static loop
  spec.status_listen = "127.0.0.1:0";
  EXPECT_THROW(spec.validate(), CheckError);

  spec = base_spec("fedavg");
  spec.arrivals = 2.0;
  spec.dwell = 0.5;
  EXPECT_NO_THROW(spec.validate());
}

}  // namespace
}  // namespace subfed
