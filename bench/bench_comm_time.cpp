// Communication wall-clock analysis (extends Table 1 / §4.2.2): the same
// federations, but accounted in *seconds* under the paper's asymmetric edge
// links (≈1 MB/s uplink, heterogeneous slow-device tail). Synchronous rounds
// wait for the slowest sampled client, so smaller pruned updates shorten
// every straggler round.
//
//   ./bench_comm_time [dataset]   (default mnist)
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "comm/round_time.h"
#include "comm/serialize.h"

using namespace subfed;
using namespace subfed::bench;

namespace {

/// Runs the federation round-by-round, converting each round's per-client
/// payloads into synchronous-round seconds under `fleet`.
template <typename MakeCosts>
double timed_run(FederatedAlgorithm& alg, const BenchScale& scale, const LinkFleet& fleet,
                 MakeCosts&& make_costs) {
  Rng sample_rng = Rng(scale.seed).split("client-sampling");
  const std::size_t per_round = std::max<std::size_t>(
      1, static_cast<std::size_t>(scale.sample_rate * static_cast<double>(scale.clients)));
  double total_seconds = 0.0;
  for (std::size_t round = 0; round < scale.rounds; ++round) {
    const auto sampled = sample_rng.sample_without_replacement(scale.clients, per_round);
    const std::vector<ClientRoundCost> costs = make_costs(sampled);
    alg.run_round(round, sampled);
    total_seconds += round_seconds(fleet, costs);
  }
  return total_seconds;
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  const BenchScale scale = BenchScale::from_env(/*default_rounds=*/12);
  const DatasetSpec spec = DatasetSpec::by_name(argc > 1 ? argv[1] : "mnist");
  print_header("Comm wall-clock", spec, scale);

  const FederatedData data = make_data(spec, scale);
  const FlContext ctx = make_ctx(data, scale);
  // Heterogeneous fleet: nominal 1 MB/s up / 8 MB/s down, up to 4× slower.
  const LinkFleet fleet(scale.clients, LinkModel{}, /*spread=*/4.0,
                        Rng(scale.seed).split("links"));
  constexpr double kComputeSeconds = 0.5;  // local-training time per round

  Model reference = ctx.spec.build();
  const std::size_t dense_payload = payload_bytes(reference.state(), nullptr);

  TablePrinter table({"algorithm", "total bytes", "sync wall-clock", "avg accuracy"});

  {
    FedAvg alg(ctx);
    auto costs = [&](const std::vector<std::size_t>& sampled) {
      std::vector<ClientRoundCost> out;
      for (const std::size_t k : sampled) {
        out.push_back({k, dense_payload, dense_payload, kComputeSeconds});
      }
      return out;
    };
    const double seconds = timed_run(alg, scale, fleet, costs);
    table.add_row({"FedAvg", format_bytes(static_cast<double>(alg.ledger().total())),
                   format_float(seconds, 1) + "s",
                   format_percent(alg.average_test_accuracy())});
  }

  for (const double target : {0.5, 0.9}) {
    SubFedAvg alg(ctx, un_config(target, scale));
    auto costs = [&](const std::vector<std::size_t>& sampled) {
      std::vector<ClientRoundCost> out;
      for (const std::size_t k : sampled) {
        ModelMask mask = alg.client(k).combined_mask();
        const std::size_t payload =
            payload_bytes(alg.client(k).personal_state(), &mask);
        out.push_back({k, payload, payload, kComputeSeconds});
      }
      return out;
    };
    const double seconds = timed_run(alg, scale, fleet, costs);
    table.add_row({"Sub-FedAvg (Un) p=" + format_percent(target, 0),
                   format_bytes(static_cast<double>(alg.ledger().total())),
                   format_float(seconds, 1) + "s",
                   format_percent(alg.average_test_accuracy())});
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf("synchronous rounds wait for the slowest sampled client; compute "
              "fixed at %.1fs, links: 1 MB/s up, 8 MB/s down, 4x slow tail\n",
              kComputeSeconds);
  return 0;
}
