// Communication wall-clock analysis (extends Table 1 / §4.2.2): the same
// federations, but accounted in *seconds* under the paper's asymmetric edge
// links (≈1 MB/s uplink, heterogeneous slow-device tail). Synchronous rounds
// wait for the slowest sampled client, so smaller pruned updates shorten
// every straggler round.
//
//   ./bench_comm_time [dataset]   (default mnist)
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "comm/round_time.h"
#include "comm/serialize.h"

using namespace subfed;
using namespace subfed::bench;

namespace {

/// Converts each round's per-client payloads into synchronous-round seconds
/// under `fleet`. Costing runs on_round_begin — BEFORE the round trains —
/// because the upload size is determined by the mask the client holds when
/// the round starts.
class RoundTimeObserver final : public RoundObserver {
 public:
  using MakeCosts = std::function<std::vector<ClientRoundCost>(std::span<const std::size_t>)>;

  RoundTimeObserver(const LinkFleet& fleet, MakeCosts make_costs)
      : fleet_(fleet), make_costs_(std::move(make_costs)) {}

  void on_round_begin(std::size_t, std::span<const std::size_t> sampled) override {
    total_seconds_ += round_seconds(fleet_, make_costs_(sampled));
  }

  double total_seconds() const noexcept { return total_seconds_; }

 private:
  const LinkFleet& fleet_;
  MakeCosts make_costs_;
  double total_seconds_ = 0.0;
};

struct TimedRun {
  RunResult result;
  double seconds = 0.0;
};

/// Runs the federation under the driver while the observer accumulates
/// synchronous wall-clock.
TimedRun timed_run(FederatedAlgorithm& alg, const BenchScale& scale, const LinkFleet& fleet,
                   RoundTimeObserver::MakeCosts make_costs) {
  RoundTimeObserver observer(fleet, std::move(make_costs));
  TimedRun timed;
  timed.result = run_federation(alg, make_driver(scale), &observer);
  timed.seconds = observer.total_seconds();
  return timed;
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  const BenchScale scale = BenchScale::from_env(/*default_rounds=*/12);
  const DatasetSpec spec = DatasetSpec::by_name(argc > 1 ? argv[1] : "mnist");
  print_header("Comm wall-clock", spec, scale);

  const FederatedData data = make_data(spec, scale);
  const FlContext ctx = make_ctx(data, scale);
  // Heterogeneous fleet: nominal 1 MB/s up / 8 MB/s down, up to 4× slower.
  const LinkFleet fleet(scale.clients, LinkModel{}, /*spread=*/4.0,
                        Rng(scale.seed).split("links"));
  constexpr double kComputeSeconds = 0.5;  // local-training time per round

  Model reference = ctx.spec.build();
  const std::size_t dense_payload = payload_bytes(reference.state(), nullptr);

  TablePrinter table({"algorithm", "total bytes", "sync wall-clock", "avg accuracy"});

  {
    auto alg = make_algo("fedavg", ctx);
    auto costs = [&](std::span<const std::size_t> sampled) {
      std::vector<ClientRoundCost> out;
      for (const std::size_t k : sampled) {
        out.push_back({k, dense_payload, dense_payload, kComputeSeconds});
      }
      return out;
    };
    const TimedRun timed = timed_run(*alg, scale, fleet, costs);
    table.add_row({"FedAvg", format_bytes(static_cast<double>(timed.result.total_bytes())),
                   format_float(timed.seconds, 1) + "s",
                   format_percent(timed.result.final_avg_accuracy)});
  }

  for (const double target : {0.5, 0.9}) {
    auto alg = make_algo("subfedavg_un", ctx, un_params(target, scale));
    SubFedAvg& sub = as_subfedavg(*alg);
    auto costs = [&](std::span<const std::size_t> sampled) {
      std::vector<ClientRoundCost> out;
      for (const std::size_t k : sampled) {
        ModelMask mask = sub.client(k).combined_mask();
        const std::size_t payload = payload_bytes(sub.client(k).personal_state(), &mask);
        out.push_back({k, payload, payload, kComputeSeconds});
      }
      return out;
    };
    const TimedRun timed = timed_run(*alg, scale, fleet, costs);
    table.add_row({"Sub-FedAvg (Un) p=" + format_percent(target, 0),
                   format_bytes(static_cast<double>(timed.result.total_bytes())),
                   format_float(timed.seconds, 1) + "s",
                   format_percent(timed.result.final_avg_accuracy)});
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf("synchronous rounds wait for the slowest sampled client; compute "
              "fixed at %.1fs, links: 1 MB/s up, 8 MB/s down, 4x slow tail\n",
              kComputeSeconds);
  return 0;
}
