// Communication wall-clock analysis (extends Table 1 / §4.2.2): the same
// federations accounted in *seconds* under the paper's asymmetric edge links
// (≈1 MB/s uplink, heterogeneous slow-device tail) — now measured natively:
// every run exchanges real messages over the loopback transport, the driver's
// LinkFleet turns the materialized bytes into synchronous round time, and the
// codec stack (sparse masks × fp16/int8 quantization) shows how far the wire
// cost compresses below dense fp32.
//
// A final row re-runs the fedavg/fp32 cell over the tcp transport — a real
// localhost coordinator with two worker processes' worth of in-process fleet
// — whose byte ledger must land exactly on the loopback row: the wire
// changes, the envelopes do not.
//
//   ./bench_comm_time [dataset]            (default mnist)
//   SUBFEDAVG_BENCH_COMM_JSON=path         also write the grid as JSON
//                                          (the CI perf-trajectory artifact)
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "comm/channel.h"
#include "fl/worker.h"

using namespace subfed;
using namespace subfed::bench;

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  const BenchScale scale = BenchScale::from_env(/*default_rounds=*/12);
  const DatasetSpec dataset = DatasetSpec::by_name(argc > 1 ? argv[1] : "mnist");
  print_header("Comm wall-clock", dataset, scale);

  // Algorithm rows × quantize columns, every cell a real loopback-transport
  // run: bytes are materialized payloads, seconds come from the driver's
  // straggler fleet (4× slow tail over 1 MB/s up / 8 MB/s down).
  ExperimentSpec base = make_spec(dataset.name, scale);
  base.transport = "loopback";
  base.link_spread = 4.0;
  base.target = 0.7;

  SweepDescription description;
  description.base = base;
  description.add_axis("algo=fedavg,subfedavg_un,subfedavg_hy");
  description.add_axis("quantize=none,fp16,int8");

  SweepOptions options = bench_sweep_options(dataset.name);
  options.echo_progress = false;
  const SweepSummary summary = run_sweep(description.expand(), options);
  report_failed_runs(summary);

  TablePrinter table({"algorithm", "quantize", "total bytes", "compression",
                      "sync wall-clock", "avg accuracy"});
  std::ostringstream json;
  json.precision(std::numeric_limits<double>::max_digits10);
  json << "[";
  bool first = true;
  double fedavg_fp32_ratio = 0.0;  // reused by the tcp row: identical bytes
  for (const SweepRunOutcome& outcome : summary.outcomes) {
    if (!outcome.ok) continue;
    const ExperimentSpec& spec = outcome.run.spec;
    const double ratio = outcome.metrics.count("compression_ratio")
                             ? outcome.metrics.at("compression_ratio")
                             : 0.0;
    if (spec.algo == "fedavg" && spec.quantize == "none") fedavg_fp32_ratio = ratio;
    table.add_row({outcome.algorithm_name, spec.quantize,
                   format_bytes(static_cast<double>(outcome.result.total_bytes())),
                   format_float(ratio, 2) + "x",
                   format_float(outcome.result.simulated_seconds, 1) + "s",
                   format_percent(outcome.result.final_avg_accuracy)});
    json << (first ? "" : ",") << "\n  {\"algorithm\": \"" << spec.algo
         << "\", \"transport\": \"" << spec.transport
         << "\", \"quantize\": \"" << spec.quantize << "\", \"codec\": \"" << spec.codec
         << "\", \"up_bytes\": " << outcome.result.up_bytes
         << ", \"down_bytes\": " << outcome.result.down_bytes
         << ", \"simulated_seconds\": " << outcome.result.simulated_seconds
         << ", \"compression_ratio\": " << ratio
         << ", \"final_avg_accuracy\": " << outcome.result.final_avg_accuracy << "}";
    first = false;
  }

  // tcp row: the fedavg/fp32 cell over real localhost sockets with a
  // two-worker fleet. Deterministic envelopes mean the byte ledger and the
  // simulated clock must reproduce the loopback row exactly — the baselines
  // manifest pins that parity as a tracked ratio.
  ExperimentSpec tcp_spec = base;
  tcp_spec.algo = "fedavg";
  tcp_spec.transport = "tcp";
  tcp_spec.listen = "127.0.0.1:0";
  tcp_spec.channel_workers = 2;
  const FederatedData tcp_data(tcp_spec.dataset_spec(), tcp_spec.data_config());
  const FlContext tcp_ctx = tcp_spec.make_context(tcp_data);
  std::unique_ptr<FederatedAlgorithm> coordinator = tcp_spec.make_algorithm(tcp_ctx);
  const std::string endpoint = coordinator->channel().transport_endpoint();
  std::vector<std::thread> fleet;
  for (int w = 0; w < 2; ++w) {
    fleet.emplace_back([endpoint] {
      WorkerOptions worker;
      worker.connect = endpoint;
      try {
        run_worker(worker);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "tcp bench worker: %s\n", e.what());
      }
    });
  }
  const RunResult tcp_result = run_federation(*coordinator, tcp_spec.driver_config());
  coordinator.reset();  // transport teardown shuts the fleet down
  for (std::thread& t : fleet) t.join();
  table.add_row({"fedavg (tcp, 2 workers)", "none",
                 format_bytes(static_cast<double>(tcp_result.total_bytes())),
                 format_float(fedavg_fp32_ratio, 2) + "x",
                 format_float(tcp_result.simulated_seconds, 1) + "s",
                 format_percent(tcp_result.final_avg_accuracy)});
  json << (first ? "" : ",") << "\n  {\"algorithm\": \"fedavg\", \"transport\": \"tcp\""
       << ", \"quantize\": \"none\", \"codec\": \"" << tcp_spec.codec
       << "\", \"up_bytes\": " << tcp_result.up_bytes
       << ", \"down_bytes\": " << tcp_result.down_bytes
       << ", \"simulated_seconds\": " << tcp_result.simulated_seconds
       << ", \"compression_ratio\": " << fedavg_fp32_ratio
       << ", \"final_avg_accuracy\": " << tcp_result.final_avg_accuracy << "}";
  json << "\n]\n";

  std::printf("%s\n", table.to_string().c_str());
  std::printf("synchronous rounds wait for the slowest sampled client; links: "
              "1 MB/s up, 8 MB/s down, 4x slow tail; compression is dense-fp32 "
              "bytes / materialized bytes\n");

  const std::string json_path = env_string("SUBFEDAVG_BENCH_COMM_JSON", "");
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::trunc);
    SUBFEDAVG_CHECK(out.good(), "cannot open '" << json_path << "'");
    out << json.str();
    std::printf("wrote %s\n", json_path.c_str());
  }
  return summary.num_failed() == 0 ? 0 : 1;
}
