// Figure 3 — test accuracy vs communication rounds for CIFAR-10, EMNIST and
// MNIST: Sub-FedAvg (Un) against FedAvg, LG-FedAvg and MTL.
//
// The paper's claim: Sub-FedAvg reaches its target accuracy in 2-10× fewer
// rounds than the baselines. Each run evaluates the average personalized
// accuracy every other round; a rounds-to-target summary follows the series.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"

using namespace subfed;
using namespace subfed::bench;

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  const BenchScale scale = BenchScale::from_env(/*default_rounds=*/16);

  std::vector<std::string> names;
  for (int i = 1; i < argc; ++i) names.emplace_back(argv[i]);
  if (names.empty()) names = {"cifar10", "emnist", "mnist"};

  for (const std::string& name : names) {
    const DatasetSpec spec = DatasetSpec::by_name(name);
    print_header("Figure 3", spec, scale);
    const FederatedData data = make_data(spec, scale);
    const FlContext ctx = make_ctx(data, scale);
    const DriverConfig driver = make_driver(scale, /*eval_every=*/2);

    struct Entry {
      std::string name;
      RunResult result;
    };
    std::vector<Entry> entries;

    struct Contender {
      const char* display;
      const char* algo;
      AlgoParams params;
    };
    const Contender contenders[] = {
        {"Sub-FedAvg (Un)", "subfedavg_un", un_params(0.5, scale)},
        {"FedAvg", "fedavg", {}},
        {"LG-FedAvg", "lg_fedavg", {}},
        {"MTL", "fedmtl", AlgoParams{}.set_double("lambda", kFedMtlLambda)},
    };
    for (const Contender& c : contenders) {
      auto alg = make_algo(c.algo, ctx, c.params);
      entries.push_back({c.display, run_federation(*alg, driver)});
    }

    // Accuracy-vs-round series (one column per algorithm).
    std::vector<std::string> header{"round"};
    for (const Entry& e : entries) header.push_back(e.name);
    TablePrinter table(header);
    const std::size_t points = entries.front().result.curve.size();
    for (std::size_t i = 0; i < points; ++i) {
      std::vector<std::string> row{
          std::to_string(entries.front().result.curve[i].round)};
      for (const Entry& e : entries) {
        row.push_back(format_percent(e.result.curve[i].avg_accuracy));
      }
      table.add_row(row);
    }
    std::printf("%s\n", table.to_string().c_str());

    // Rounds-to-target: target = 90% of the best final accuracy achieved by
    // any algorithm on this dataset.
    double best = 0.0;
    for (const Entry& e : entries) best = std::max(best, e.result.final_avg_accuracy);
    const double threshold = 0.9 * best;
    TablePrinter summary({"algorithm", "final accuracy",
                          "rounds to " + format_percent(threshold)});
    for (const Entry& e : entries) {
      const std::size_t rounds = e.result.rounds_to_reach(threshold);
      summary.add_row({e.name, format_percent(e.result.final_avg_accuracy),
                       rounds == 0 ? "not reached" : std::to_string(rounds)});
    }
    std::printf("%s\n", summary.to_string().c_str());
  }
  return 0;
}
