// Engineering micro-benchmarks (google-benchmark): GEMM/conv throughput,
// mask operations, and the two aggregation rules (the DESIGN.md §4.2
// counting-vs-strict-intersection ablation at the per-op level).
#include <benchmark/benchmark.h>

#include "core/aggregate.h"
#include "nn/conv2d.h"
#include "nn/model_zoo.h"
#include "pruning/unstructured.h"
#include "tensor/gemm.h"
#include "util/rng.h"

namespace subfed {
namespace {

void BM_Gemm(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<float> a(n * n), b(n * n), c(n * n);
  for (auto& x : a) x = static_cast<float>(rng.normal());
  for (auto& x : b) x = static_cast<float>(rng.normal());
  for (auto _ : state) {
    gemm(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128);

void BM_LeNetForward(benchmark::State& state) {
  Rng rng(2);
  Model model = ModelSpec::lenet5(10).build_init(rng);
  Tensor batch({10, 3, 32, 32});
  batch.fill_normal(rng, 0.0f, 1.0f);
  for (auto _ : state) {
    Tensor out = model.forward(batch, /*train=*/false);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 10);
}
BENCHMARK(BM_LeNetForward);

void BM_MagnitudeMaskDerivation(benchmark::State& state) {
  Rng rng(3);
  Model model = ModelSpec::lenet5(10).build_init(rng);
  ModelMask mask = ModelMask::ones_like(model, MaskScope::kAllPrunable);
  for (auto _ : state) {
    ModelMask next = derive_magnitude_mask(model, mask, 0.5);
    benchmark::DoNotOptimize(&next);
  }
}
BENCHMARK(BM_MagnitudeMaskDerivation);

void BM_SubFedAvgAggregate(benchmark::State& state) {
  const std::size_t clients = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  Model model = ModelSpec::lenet5(10).build_init(rng);
  const StateDict global = model.state();

  std::vector<ClientUpdate> updates(clients);
  for (std::size_t k = 0; k < clients; ++k) {
    Rng crng = rng.split("client", k);
    Model m = ModelSpec::lenet5(10).build_init(crng);
    ModelMask mask = ModelMask::ones_like(m, MaskScope::kAllPrunable);
    mask = derive_magnitude_mask(m, mask, 0.5);
    updates[k] = {m.state(), mask, 500};
  }
  const bool strict = state.range(1) != 0;
  for (auto _ : state) {
    StateDict out = strict ? sub_fedavg_aggregate_strict(updates, global)
                           : sub_fedavg_aggregate(updates, global);
    benchmark::DoNotOptimize(&out);
  }
}
BENCHMARK(BM_SubFedAvgAggregate)
    ->Args({5, 0})
    ->Args({10, 0})
    ->Args({10, 1});

}  // namespace
}  // namespace subfed

BENCHMARK_MAIN();
