// Engineering micro-benchmarks (google-benchmark): GEMM/conv throughput per
// math backend (naive vs blocked vs sparse at several mask densities), mask
// operations, and the two aggregation rules (the DESIGN.md §4.2
// counting-vs-strict-intersection ablation at the per-op level).
//
// The backend GEMM matrix is the perf-trajectory record for the kernel layer;
// CI runs it as
//   ./bench_micro --benchmark_filter='GemmBackend|GemmDevice|ConvForward' \
//       --benchmark_out=BENCH_gemm.json --benchmark_out_format=json
// and uploads BENCH_gemm.json, so regressions show up run over run.
#include <benchmark/benchmark.h>

#include "core/aggregate.h"
#include "nn/conv2d.h"
#include "nn/model_zoo.h"
#include "pruning/unstructured.h"
#include "tensor/backend.h"
#include "tensor/device.h"
#include "util/rng.h"

namespace subfed {
namespace {

const char* const kBackendNames[] = {"naive", "blocked", "sparse"};

/// A [n×n] matrix with `density_pct`% nonzeros — pruning masks make weights
/// exact zeros, which is what the sparse backend keys on.
std::vector<float> masked_matrix(Rng& rng, std::size_t size, int density_pct) {
  std::vector<float> out(size);
  for (auto& x : out) {
    x = rng.bernoulli(density_pct / 100.0) ? static_cast<float>(rng.normal()) : 0.0f;
  }
  return out;
}

void BM_Gemm(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<float> a(n * n), b(n * n), c(n * n);
  for (auto& x : a) x = static_cast<float>(rng.normal());
  for (auto& x : b) x = static_cast<float>(rng.normal());
  for (auto _ : state) {
    gemm(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128);

/// args: {size, backend index, weight density %}. items/sec is dense-equiv
/// FLOPs, so "sparse at 20%" reads directly against "blocked at 100%".
void BM_GemmBackend(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const MathBackend& backend = math_backend(kBackendNames[state.range(1)]);
  const int density_pct = static_cast<int>(state.range(2));
  Rng rng(1);
  std::vector<float> a = masked_matrix(rng, n * n, density_pct);
  std::vector<float> b(n * n), c(n * n);
  for (auto& x : b) x = static_cast<float>(rng.normal());
  for (auto _ : state) {
    backend.gemm_nn(a.data(), b.data(), c.data(), n, n, n, /*accumulate=*/false);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetLabel(std::string(backend.name()) + "/d" + std::to_string(density_pct));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 * n * n * n);
}
BENCHMARK(BM_GemmBackend)
    // Dense: the naive→blocked headline (acceptance: blocked ≥ 3× at 128³).
    ->Args({128, 0, 100})
    ->Args({128, 1, 100})
    ->Args({128, 2, 100})
    ->Args({256, 0, 100})
    ->Args({256, 1, 100})
    // Masked weights: dense blocked vs sparse CSR across the pruning range.
    ->Args({128, 1, 20})
    ->Args({128, 2, 20})
    ->Args({128, 2, 10})
    ->Args({128, 2, 5})
    ->Args({256, 1, 10})
    ->Args({256, 2, 10});

/// args: {size, dtype index (0 = fp32, 1 = fp16)} — GEMM routed through the
/// Device API. After the first iteration every call is a plan-cache hit, so
/// against BM_GemmBackend (a direct, pre-planned kernel call) this row prices
/// the cache lookup; the fp16 rows price the half-precision staging on top.
void BM_GemmDevice(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Device& dev = get_device(
      "blocked", state.range(1) == 1 ? ComputeDType::kFp16 : ComputeDType::kFp32);
  Rng rng(1);
  std::vector<float> a(n * n), b(n * n), c(n * n);
  for (auto& x : a) x = static_cast<float>(rng.normal());
  for (auto& x : b) x = static_cast<float>(rng.normal());
  for (auto _ : state) {
    dev.gemm(GemmOp::kNN, a.data(), b.data(), c.data(), n, n, n, /*accumulate=*/false);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetLabel(dev.name());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 * n * n * n);
}
BENCHMARK(BM_GemmDevice)->Args({128, 0})->Args({128, 1})->Args({256, 0})->Args({256, 1});

void BM_LeNetForward(benchmark::State& state) {
  Rng rng(2);
  Model model = ModelSpec::lenet5(10).build_init(rng);
  Tensor batch({10, 3, 32, 32});
  batch.fill_normal(rng, 0.0f, 1.0f);
  for (auto _ : state) {
    Tensor out = model.forward(batch, /*train=*/false);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 10);
}
BENCHMARK(BM_LeNetForward);

/// args: {backend index, weight density %} — whole-model forward through the
/// batched-im2col conv path on each backend.
void BM_ConvForwardBackend(benchmark::State& state) {
  Rng rng(2);
  ModelSpec spec = ModelSpec::lenet5(10);
  spec.backend = kBackendNames[state.range(0)];
  Model model = spec.build_init(rng);
  const int density_pct = static_cast<int>(state.range(1));
  if (density_pct < 100) {
    Rng mask_rng(3);
    for (Parameter* p : model.parameters()) {
      if (!p->prunable) continue;
      for (std::size_t i = 0; i < p->value.numel(); ++i) {
        if (!mask_rng.bernoulli(density_pct / 100.0)) p->value[i] = 0.0f;
      }
    }
  }
  Tensor batch({10, 3, 32, 32});
  batch.fill_normal(rng, 0.0f, 1.0f);
  for (auto _ : state) {
    Tensor out = model.forward(batch, /*train=*/false);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetLabel(std::string(spec.backend) + "/d" + std::to_string(density_pct));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 10);
}
BENCHMARK(BM_ConvForwardBackend)
    ->Args({0, 100})
    ->Args({1, 100})
    ->Args({2, 100})
    ->Args({1, 15})
    ->Args({2, 15});

/// args: {fused} — whole-model eval forward (blocked backend) with the
/// conv→bn→relu epilogue fused into the GEMM store-back vs the layer-by-layer
/// chain. The two are bit-identical; the fused row should never be slower.
void BM_ConvForwardFused(benchmark::State& state) {
  Rng rng(2);
  ModelSpec spec = ModelSpec::lenet5(10);
  spec.backend = "blocked";
  Model model = spec.build_init(rng);
  model.set_fusion(state.range(0) != 0);
  Tensor batch({10, 3, 32, 32});
  batch.fill_normal(rng, 0.0f, 1.0f);
  for (auto _ : state) {
    Tensor out = model.forward(batch, /*train=*/false);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetLabel(state.range(0) != 0 ? "fused" : "unfused");
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 10);
}
BENCHMARK(BM_ConvForwardFused)->Arg(0)->Arg(1);

void BM_MagnitudeMaskDerivation(benchmark::State& state) {
  Rng rng(3);
  Model model = ModelSpec::lenet5(10).build_init(rng);
  ModelMask mask = ModelMask::ones_like(model, MaskScope::kAllPrunable);
  for (auto _ : state) {
    ModelMask next = derive_magnitude_mask(model, mask, 0.5);
    benchmark::DoNotOptimize(&next);
  }
}
BENCHMARK(BM_MagnitudeMaskDerivation);

void BM_SubFedAvgAggregate(benchmark::State& state) {
  const std::size_t clients = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  Model model = ModelSpec::lenet5(10).build_init(rng);
  const StateDict global = model.state();

  std::vector<ClientUpdate> updates(clients);
  for (std::size_t k = 0; k < clients; ++k) {
    Rng crng = rng.split("client", k);
    Model m = ModelSpec::lenet5(10).build_init(crng);
    ModelMask mask = ModelMask::ones_like(m, MaskScope::kAllPrunable);
    mask = derive_magnitude_mask(m, mask, 0.5);
    updates[k] = {m.state(), mask, 500};
  }
  const bool strict = state.range(1) != 0;
  for (auto _ : state) {
    StateDict out = strict ? sub_fedavg_aggregate_strict(updates, global)
                           : sub_fedavg_aggregate(updates, global);
    benchmark::DoNotOptimize(&out);
  }
}
BENCHMARK(BM_SubFedAvgAggregate)
    ->Args({5, 0})
    ->Args({10, 0})
    ->Args({10, 1});

}  // namespace
}  // namespace subfed

BENCHMARK_MAIN();
