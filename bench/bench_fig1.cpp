// Figure 1 — test accuracy vs pruning percentage for sampled clients
// (Sub-FedAvg (Un) on LeNet-5 / CIFAR-10 surrogate).
//
// The paper prunes iteratively (5-10% of remaining per round) toward a high
// target and plots each client's personalized accuracy against its current
// pruned fraction: accuracy rises with moderate pruning (common parameters
// removed) and degrades past ~50% (personal parameters start dying).
//
// A RoundObserver snapshots (pruned %, accuracy) for every sampled client
// after every round, so the standard driver loop still runs the federation.
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.h"

using namespace subfed;
using namespace subfed::bench;

namespace {

/// Per-client (pruned fraction, personalized accuracy) traces, appended after
/// each round for the clients that participated.
class PruneTraceObserver final : public RoundObserver {
 public:
  explicit PruneTraceObserver(SubFedAvg& algorithm) : algorithm_(algorithm) {}

  void on_round_end(const RoundEndInfo& info) override {
    for (const std::size_t k : info.sampled) {
      traces_[k].emplace_back(algorithm_.client(k).unstructured_pruned(),
                              algorithm_.client_test_accuracy(k));
    }
  }

  const std::map<std::size_t, std::vector<std::pair<double, double>>>& traces() const {
    return traces_;
  }

 private:
  SubFedAvg& algorithm_;
  std::map<std::size_t, std::vector<std::pair<double, double>>> traces_;
};

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  BenchScale scale = BenchScale::from_env(/*default_rounds=*/24);
  // Fig. 1 tracks per-client trajectories, so default to full participation:
  // every client prunes a small slice each round and the x-axis sweeps the
  // whole 0-90% range at the paper's granularity.
  if (env_double("SUBFEDAVG_BENCH_SAMPLE", 0.0) == 0.0) scale.sample_rate = 1.0;
  const DatasetSpec spec = DatasetSpec::by_name(argc > 1 ? argv[1] : "cifar10");
  print_header("Figure 1", spec, scale);

  const FederatedData data = make_data(spec, scale);
  const FlContext ctx = make_ctx(data, scale);

  // High target, fixed 10%-of-remaining step per round — the paper's Fig. 1
  // "iteratively pruning by 5%-10% per iteration".
  AlgoParams params = un_params(0.92, scale);
  params.set_double("step", 0.1);
  auto alg = make_algo("subfedavg_un", ctx, params);

  PruneTraceObserver observer(as_subfedavg(*alg));
  run_federation(*alg, make_driver(scale), &observer);
  const auto& traces = observer.traces();

  // Report the clients with the longest traces (most participation).
  std::vector<std::pair<std::size_t, std::size_t>> by_length;
  by_length.reserve(traces.size());
  for (const auto& [k, trace] : traces) by_length.emplace_back(trace.size(), k);
  std::sort(by_length.rbegin(), by_length.rend());
  const std::size_t show = std::min<std::size_t>(5, by_length.size());

  for (std::size_t i = 0; i < show; ++i) {
    const std::size_t k = by_length[i].second;
    std::printf("client %zu (labels:", k);
    for (const auto label : data.client(k).labels_present) std::printf(" %d", label);
    std::printf(")\n");
    TablePrinter table({"pruned %", "test accuracy"});
    for (const auto& [pruned, acc] : traces.at(k)) {
      table.add_row({format_percent(pruned, 1), format_percent(acc)});
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  // Aggregate view: accuracy per pruning-percentage bucket across all clients.
  TablePrinter buckets({"pruned % bucket", "mean accuracy", "samples"});
  std::map<int, std::pair<double, std::size_t>> bucketed;
  for (const auto& [k, trace] : traces) {
    for (const auto& [pruned, acc] : trace) {
      auto& [sum, count] = bucketed[static_cast<int>(pruned * 10)];
      sum += acc;
      ++count;
    }
  }
  for (const auto& [bucket, agg] : bucketed) {
    buckets.add_row({std::to_string(bucket * 10) + "-" + std::to_string(bucket * 10 + 10) + "%",
                     format_percent(agg.first / agg.second),
                     std::to_string(agg.second)});
  }
  std::printf("all clients, bucketed:\n%s\n", buckets.to_string().c_str());
  return 0;
}
