// Shared configuration for the experiment benches.
//
// Every bench reproduces a paper table/figure at a scaled-down default size
// that completes in CI time. Environment knobs restore paper scale:
//
//   SUBFEDAVG_BENCH_CLIENTS   number of clients            (default 20; paper 100)
//   SUBFEDAVG_BENCH_SHARD     shard size                   (default 50; paper 250/125)
//   SUBFEDAVG_BENCH_ROUNDS    communication rounds         (default per-bench; paper 300-500)
//   SUBFEDAVG_BENCH_SAMPLE    client sampling rate         (default 0.3; paper 0.1)
//   SUBFEDAVG_BENCH_EPOCHS    local epochs                 (default 5, as in the paper)
//   SUBFEDAVG_BENCH_TPC       test images per class        (default 16)
//   SUBFEDAVG_BENCH_SEED      master seed                  (default 1)
//   SUBFEDAVG_BENCH_SEEDS     seeds per configuration      (default 1; >1 = mean±std)
//   SUBFEDAVG_BENCH_JOBS      sweep worker threads         (default hardware)
//   SUBFEDAVG_BENCH_OUT       per-run JSON directory       (default none)
//
// Algorithms are constructed exclusively through the registry
// (fl/registry.h); benches pass AlgoParams instead of touching concrete
// algorithm classes.
//
// The paper's qualitative shape (who wins, by what rough factor) is stable
// across these scales; absolute accuracy differs because the substrate is a
// synthetic-data simulator (DESIGN.md §1).
#pragma once

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>

#include "data/client_data.h"
#include "fl/driver.h"
#include "fl/experiment.h"
#include "fl/registry.h"
#include "fl/subfedavg.h"
#include "fl/sweep.h"
#include "metrics/stats.h"
#include "util/check.h"
#include "util/env.h"
#include "util/logging.h"
#include "util/table.h"

namespace subfed::bench {

struct BenchScale {
  std::size_t clients;
  std::size_t shard;
  std::size_t rounds;
  double sample_rate;
  std::size_t epochs;
  std::size_t test_per_class;
  std::uint64_t seed;

  static BenchScale from_env(std::size_t default_rounds) {
    BenchScale s;
    s.clients = static_cast<std::size_t>(env_int("SUBFEDAVG_BENCH_CLIENTS", 20));
    s.shard = static_cast<std::size_t>(env_int("SUBFEDAVG_BENCH_SHARD", 50));
    s.rounds = static_cast<std::size_t>(
        env_int("SUBFEDAVG_BENCH_ROUNDS", static_cast<std::int64_t>(default_rounds)));
    s.sample_rate = env_double("SUBFEDAVG_BENCH_SAMPLE", 0.3);
    s.epochs = static_cast<std::size_t>(env_int("SUBFEDAVG_BENCH_EPOCHS", 5));
    s.test_per_class = static_cast<std::size_t>(env_int("SUBFEDAVG_BENCH_TPC", 16));
    s.seed = static_cast<std::uint64_t>(env_int("SUBFEDAVG_BENCH_SEED", 1));
    return s;
  }
};

/// The BenchScale as an ExperimentSpec base for sweep-driven benches — the
/// same data/model/driver configuration make_data/make_ctx/make_driver build
/// by hand, so spec-driven and hand-built runs produce identical numbers.
inline ExperimentSpec make_spec(const std::string& dataset, const BenchScale& scale) {
  ExperimentSpec spec;
  spec.dataset = dataset;
  spec.clients = scale.clients;
  spec.shard = scale.shard;
  spec.test_per_class = scale.test_per_class;
  spec.epochs = scale.epochs;
  spec.rounds = scale.rounds;
  spec.sample = scale.sample_rate;
  spec.seed = scale.seed;
  // 0 keeps the round-budget-adaptive schedule; the env override pins it.
  spec.step = env_double("SUBFEDAVG_BENCH_PRUNE_STEP", 0.0);
  return spec;
}

/// Sweep execution knobs shared by the table benches.
inline SweepOptions bench_sweep_options(const std::string& dataset) {
  SweepOptions options;
  options.jobs = static_cast<std::size_t>(env_int("SUBFEDAVG_BENCH_JOBS", 0));
  const std::string out = env_string("SUBFEDAVG_BENCH_OUT", "");
  if (!out.empty()) options.out_dir = out + "/" + dataset;
  return options;
}

/// Seeds per configuration (SUBFEDAVG_BENCH_SEEDS); >1 turns the table
/// benches' accuracy cells into mean ± std over a seed replicate axis.
inline std::size_t bench_seeds() {
  return static_cast<std::size_t>(env_int("SUBFEDAVG_BENCH_SEEDS", 1));
}

/// "86.25%" for one seed, "86.25% ± 1.31%" for replicated runs.
inline std::string format_summary_percent(const Summary& s, int digits = 2) {
  std::string out = format_percent(s.mean, digits);
  if (s.count > 1) out += " ± " + format_percent(s.stddev, digits);
  return out;
}

inline FederatedData make_data(const DatasetSpec& spec, const BenchScale& scale) {
  FederatedDataConfig config;
  config.partition = {scale.clients, 2, scale.shard};
  config.test_per_class = scale.test_per_class;
  config.seed = scale.seed;
  return FederatedData(spec, config);
}

inline ModelSpec model_for(const DatasetSpec& spec) {
  // Paper §4.1: 5-layer CNN for MNIST/EMNIST, LeNet-5 for CIFAR-10/100.
  if (spec.channels == 3) return ModelSpec::lenet5(spec.num_classes);
  return ModelSpec::cnn5(spec.num_classes);
}

inline FlContext make_ctx(const FederatedData& data, const BenchScale& scale) {
  FlContext ctx;
  ctx.data = &data;
  ctx.spec = model_for(data.spec());
  ctx.train = {scale.epochs, /*batch=*/10};
  ctx.sgd = {/*lr=*/0.01f, /*momentum=*/0.5f, /*weight_decay=*/0.0f};
  ctx.seed = scale.seed;
  return ctx;
}

inline DriverConfig make_driver(const BenchScale& scale, std::size_t eval_every = 0) {
  DriverConfig d;
  d.rounds = scale.rounds;
  d.sample_rate = scale.sample_rate;
  d.eval_every = eval_every;
  d.seed = scale.seed;
  return d;
}

/// Registry construction shorthand for benches.
inline std::unique_ptr<FederatedAlgorithm> make_algo(const std::string& name,
                                                     const FlContext& ctx,
                                                     const AlgoParams& params = {}) {
  return registry().create(name, ctx, params);
}

/// Downcast for benches that report Sub-FedAvg pruning state; checks the
/// registry really produced a SubFedAvg.
inline SubFedAvg& as_subfedavg(FederatedAlgorithm& algorithm) {
  auto* sub = dynamic_cast<SubFedAvg*>(&algorithm);
  SUBFEDAVG_CHECK(sub != nullptr, algorithm.name() << " is not a SubFedAvg");
  return *sub;
}

/// Round-budget-adaptive per-round prune step (fl/experiment.h), with the
/// SUBFEDAVG_BENCH_PRUNE_STEP env override the benches document.
inline double adaptive_step(double target, const BenchScale& scale) {
  const double override_step = env_double("SUBFEDAVG_BENCH_PRUNE_STEP", 0.0);
  if (override_step > 0.0) return override_step;
  return adaptive_prune_step(target, scale.rounds, scale.sample_rate);
}

/// Sub-FedAvg (Un) params matching the paper's hyper-parameters (§4.1):
/// mask-distance threshold 1e-4, Accth 0.5.
inline AlgoParams un_params(double target, const BenchScale& scale) {
  AlgoParams params;
  params.set_double("target", target);
  params.set_double("step", adaptive_step(target, scale));
  return params;
}

/// Sub-FedAvg (Hy) params: channel gate ε 0.05 (registry default), separate
/// channel/weight targets and steps.
inline AlgoParams hy_params(double target_channels, double target_weights,
                            const BenchScale& scale) {
  AlgoParams params;
  params.set_double("target", target_weights);
  params.set_double("step", adaptive_step(target_weights, scale));
  params.set_double("channel_target", target_channels);
  params.set_double("channel_step", adaptive_step(target_channels, scale));
  return params;
}

/// FedProx μ and MTL λ used across benches (standard values for this setup);
/// these match the registry defaults and are passed explicitly for
/// reproducibility in printed configs.
constexpr double kFedProxMu = 0.1;
constexpr double kFedMtlLambda = 0.1;

inline void print_header(const char* what, const DatasetSpec& spec,
                         const BenchScale& scale) {
  std::printf("== %s — %s: %zu clients, shard %zu, %zu rounds, sample %.2f, "
              "%zu epochs, seed %llu ==\n",
              what, spec.name.c_str(), scale.clients, scale.shard, scale.rounds,
              scale.sample_rate, scale.epochs,
              static_cast<unsigned long long>(scale.seed));
}

}  // namespace subfed::bench
