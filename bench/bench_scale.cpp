// Population-scaling bench: RSS and round throughput versus federation size
// under the lazy client store (client_cache bounded) — the O(active)-memory
// claim as a measured trajectory.
//
// Each cell runs in a FORKED child so its resident-set reading is the cell's
// own: the child builds a FederationSession from the spec, advances a few
// sampled rounds, reads VmRSS/VmHWM from /proc/self/status, and pipes one
// JSON row back. Populations grow geometrically (×10) from 1k to the env cap;
// the lazy rows share one small client_cache, so a flat rss_mb column IS the
// O(active) property. The smallest population also runs eager
// (client_cache=0) for a lazy-vs-eager rounds/sec ratio — the overhead the
// on-demand synthesis and spill/refault machinery costs where eager fits.
//
//   ./bench_scale [dataset]                      (default mnist)
//   SUBFEDAVG_SCALE_CLIENTS=1000000              largest population (default 100000)
//   SUBFEDAVG_SCALE_ROUNDS=3                     timed rounds per cell
//   SUBFEDAVG_SCALE_CACHE=64                     lazy-mode client_cache
//   SUBFEDAVG_SCALE_COHORT=8                     sampled clients per round
//   SUBFEDAVG_BENCH_SCALE_JSON=path              write rows as JSON
//                                                (the CI perf-trajectory artifact)
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "serve/session.h"

using namespace subfed;
using namespace subfed::bench;

namespace {

/// VmRSS / VmHWM of this process, in MiB, from /proc/self/status.
double proc_status_mb(const char* key) {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind(key, 0) != 0) continue;
    std::istringstream fields(line.substr(std::strlen(key) + 1));
    double kb = 0.0;
    fields >> kb;
    return kb / 1024.0;
  }
  return 0.0;
}

struct Cell {
  std::size_t clients = 0;
  std::string mode;  ///< "lazy" | "eager"
  std::size_t cache = 0;
};

struct Row {
  Cell cell;
  double rss_mb = 0.0;
  double hwm_mb = 0.0;
  double rounds_per_sec = 0.0;
};

ExperimentSpec cell_spec(const std::string& dataset, const Cell& cell, std::size_t cohort,
                         std::size_t rounds, std::uint64_t seed) {
  ExperimentSpec spec;
  spec.dataset = dataset;
  spec.clients = cell.clients;
  spec.shard = 20;
  spec.test_per_class = 4;
  spec.epochs = static_cast<std::size_t>(env_int("SUBFEDAVG_BENCH_EPOCHS", 3));
  spec.rounds = rounds;
  spec.sample = static_cast<double>(cohort) / static_cast<double>(cell.clients);
  spec.seed = seed;
  spec.algo = "subfedavg_un";
  spec.client_cache = cell.cache;
  return spec;
}

/// The child half of a cell: build, step, measure, report, _exit. Uses
/// advance_round (not run_to_completion) — finish() evaluates every client in
/// the federation, which is exactly the O(population) pass this bench exists
/// to avoid.
void run_cell_child(const std::string& dataset, const Cell& cell, std::size_t cohort,
                    std::size_t rounds, std::uint64_t seed, int out_fd) {
  const ExperimentSpec spec = cell_spec(dataset, cell, cohort, rounds, seed);
  auto session = FederationSession::from_spec(spec);

  const auto start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < rounds; ++r) session->advance_round();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  std::ostringstream row;
  row.precision(std::numeric_limits<double>::max_digits10);
  row << "{\"clients\": " << cell.clients << ", \"mode\": \"" << cell.mode
      << "\", \"client_cache\": " << cell.cache << ", \"rounds\": " << rounds
      << ", \"rss_mb\": " << proc_status_mb("VmRSS:")
      << ", \"hwm_mb\": " << proc_status_mb("VmHWM:") << ", \"rounds_per_sec\": "
      << (seconds > 0.0 ? static_cast<double>(rounds) / seconds : 0.0) << "}";
  const std::string text = row.str();
  std::size_t written = 0;
  while (written < text.size()) {
    const ssize_t n = write(out_fd, text.data() + written, text.size() - written);
    if (n <= 0) _exit(3);
    written += static_cast<std::size_t>(n);
  }
  _exit(0);
}

Row run_cell(const std::string& dataset, const Cell& cell, std::size_t cohort,
             std::size_t rounds, std::uint64_t seed) {
  int fds[2];
  SUBFEDAVG_CHECK(pipe(fds) == 0, "pipe failed");
  const pid_t pid = fork();
  SUBFEDAVG_CHECK(pid >= 0, "fork failed");
  if (pid == 0) {
    close(fds[0]);
    run_cell_child(dataset, cell, cohort, rounds, seed, fds[1]);
  }
  close(fds[1]);
  std::string text;
  char buffer[4096];
  ssize_t n;
  while ((n = read(fds[0], buffer, sizeof(buffer))) > 0) text.append(buffer, static_cast<std::size_t>(n));
  close(fds[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  SUBFEDAVG_CHECK(WIFEXITED(status) && WEXITSTATUS(status) == 0,
                  "scale cell (" << cell.clients << " clients, " << cell.mode
                                 << ") child failed with status " << status);

  // Pull the three numbers back out of the child's row for the table.
  Row row;
  row.cell = cell;
  const auto field = [&text](const char* name) {
    const std::size_t at = text.find(name);
    SUBFEDAVG_CHECK(at != std::string::npos, "child row missing " << name << ": " << text);
    return std::stod(text.substr(at + std::strlen(name)));
  };
  row.rss_mb = field("\"rss_mb\": ");
  row.hwm_mb = field("\"hwm_mb\": ");
  row.rounds_per_sec = field("\"rounds_per_sec\": ");
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  const std::string dataset = argc > 1 ? argv[1] : "mnist";
  const std::size_t max_clients =
      static_cast<std::size_t>(env_int("SUBFEDAVG_SCALE_CLIENTS", 100000));
  const std::size_t rounds = static_cast<std::size_t>(env_int("SUBFEDAVG_SCALE_ROUNDS", 3));
  const std::size_t cache = static_cast<std::size_t>(env_int("SUBFEDAVG_SCALE_CACHE", 64));
  const std::size_t cohort = static_cast<std::size_t>(env_int("SUBFEDAVG_SCALE_COHORT", 8));
  const std::uint64_t seed = static_cast<std::uint64_t>(env_int("SUBFEDAVG_BENCH_SEED", 1));

  std::vector<Cell> cells;
  cells.push_back({std::min<std::size_t>(1000, max_clients), "eager", 0});
  for (std::size_t n = 1000; n < max_clients; n *= 10) cells.push_back({n, "lazy", cache});
  cells.push_back({max_clients, "lazy", cache});

  std::printf("== Population scaling — %s: cohort %zu, %zu timed rounds, cache %zu, "
              "up to %zu clients ==\n",
              dataset.c_str(), cohort, rounds, cache, max_clients);

  TablePrinter table({"clients", "mode", "cache", "RSS", "peak RSS", "rounds/sec"});
  std::ostringstream json;
  json.precision(std::numeric_limits<double>::max_digits10);
  json << "[";
  bool first = true;
  for (const Cell& cell : cells) {
    const Row row = run_cell(dataset, cell, cohort, rounds, seed);
    table.add_row({std::to_string(cell.clients), cell.mode, std::to_string(cell.cache),
                   format_float(row.rss_mb, 1) + " MiB", format_float(row.hwm_mb, 1) + " MiB",
                   format_float(row.rounds_per_sec, 2)});
    json << (first ? "" : ",") << "\n  {\"clients\": " << cell.clients << ", \"mode\": \""
         << cell.mode << "\", \"client_cache\": " << cell.cache
         << ", \"rss_mb\": " << row.rss_mb << ", \"hwm_mb\": " << row.hwm_mb
         << ", \"rounds_per_sec\": " << row.rounds_per_sec << "}";
    first = false;
  }
  json << "\n]\n";

  std::printf("%s\n", table.to_string().c_str());
  std::printf("lazy rows share one client_cache=%zu; a flat RSS column across the "
              "population axis is the O(active)-memory property\n", cache);

  const std::string json_path = env_string("SUBFEDAVG_BENCH_SCALE_JSON", "");
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::trunc);
    SUBFEDAVG_CHECK(out.good(), "cannot open '" << json_path << "'");
    out << json.str();
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
