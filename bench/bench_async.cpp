// Async-rounds analysis: synchronous vs buffered (FedBuff-style) aggregation
// across a straggler-severity grid. Every cell is a real loopback-transport
// run; simulated seconds come from the LinkFleet round-time model — the max
// arrival for sync rounds, the K-th arrival for buffered rounds — so the
// table shows what closing a round early buys in wall-clock and what the
// staleness-down-weighted late updates cost in accuracy.
//
//   ./bench_async [dataset]                (default mnist)
//   SUBFEDAVG_BENCH_LINK_SPREADS=1,4,8     straggler-severity grid
//   SUBFEDAVG_BENCH_BUFFER_K=k             buffered close count
//                                          (default ~60% of sampled)
//   SUBFEDAVG_BENCH_ASYNC_JSON=path        also write the grid as JSON
//                                          (the CI perf-trajectory artifact)
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"

using namespace subfed;
using namespace subfed::bench;

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  const BenchScale scale = BenchScale::from_env(/*default_rounds=*/12);
  const DatasetSpec dataset = DatasetSpec::by_name(argc > 1 ? argv[1] : "mnist");
  print_header("Async rounds", dataset, scale);

  const std::size_t sampled = std::max<std::size_t>(
      1, static_cast<std::size_t>(scale.sample_rate * static_cast<double>(scale.clients)));
  const std::size_t buffer_k = static_cast<std::size_t>(env_int(
      "SUBFEDAVG_BENCH_BUFFER_K",
      static_cast<std::int64_t>(std::max<std::size_t>(1, (sampled * 3) / 5))));

  ExperimentSpec base = make_spec(dataset.name, scale);
  base.transport = "loopback";
  base.algo = "subfedavg_un";
  base.target = 0.7;
  base.buffer_k = buffer_k;

  SweepDescription description;
  description.base = base;
  description.add_axis("aggregation=sync,buffered");
  description.add_axis("link_spread=" + env_string("SUBFEDAVG_BENCH_LINK_SPREADS", "1,4,8"));

  SweepOptions options = bench_sweep_options(dataset.name);
  options.echo_progress = false;
  const SweepSummary summary = run_sweep(description.expand(), options);
  report_failed_runs(summary);

  TablePrinter table({"aggregation", "link spread", "buffer", "total bytes",
                      "sim wall-clock", "stale", "avg accuracy"});
  std::ostringstream json;
  json.precision(std::numeric_limits<double>::max_digits10);
  json << "[";
  bool first = true;
  for (const SweepRunOutcome& outcome : summary.outcomes) {
    if (!outcome.ok) continue;
    const ExperimentSpec& spec = outcome.run.spec;
    const bool buffered = spec.aggregation == "buffered";
    const double stale = outcome.metrics.count("stale_updates")
                             ? outcome.metrics.at("stale_updates")
                             : 0.0;
    const double evicted = outcome.metrics.count("evicted_updates")
                               ? outcome.metrics.at("evicted_updates")
                               : 0.0;
    table.add_row({spec.aggregation, format_float(spec.link_spread, 1),
                   buffered ? std::to_string(buffer_k) + "/" + std::to_string(sampled)
                            : std::to_string(sampled) + "/" + std::to_string(sampled),
                   format_bytes(static_cast<double>(outcome.result.total_bytes())),
                   format_float(outcome.result.simulated_seconds, 1) + "s",
                   format_float(stale, 0),
                   format_percent(outcome.result.final_avg_accuracy)});
    json << (first ? "" : ",") << "\n  {\"aggregation\": \"" << spec.aggregation
         << "\", \"link_spread\": " << spec.link_spread
         << ", \"buffer_k\": " << (buffered ? buffer_k : sampled)
         << ", \"sampled\": " << sampled
         << ", \"up_bytes\": " << outcome.result.up_bytes
         << ", \"down_bytes\": " << outcome.result.down_bytes
         << ", \"simulated_seconds\": " << outcome.result.simulated_seconds
         << ", \"stale_updates\": " << stale << ", \"evicted_updates\": " << evicted
         << ", \"final_avg_accuracy\": " << outcome.result.final_avg_accuracy << "}";
    first = false;
  }
  json << "\n]\n";

  std::printf("%s\n", table.to_string().c_str());
  std::printf("sync rounds wait for the slowest sampled client; buffered rounds close "
              "after %zu of %zu replies and deliver stragglers' updates next round, "
              "down-weighted by 1/(1+staleness)^%.2f\n",
              buffer_k, sampled, base.staleness_decay);

  const std::string json_path = env_string("SUBFEDAVG_BENCH_ASYNC_JSON", "");
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::trunc);
    SUBFEDAVG_CHECK(out.good(), "cannot open '" << json_path << "'");
    out << json.str();
    std::printf("wrote %s\n", json_path.c_str());
  }
  return summary.num_failed() == 0 ? 0 : 1;
}
