// Telemetry overhead gate: the same small in-memory federation run with
// telemetry off and with the counters tier on, reported as a wall-clock
// ratio. The disabled path is a relaxed atomic load per instrument, so the
// ratio must stay ≈ 1; bench/baselines/BENCH_telemetry.json pins it.
//
//   SUBFEDAVG_BENCH_TELEMETRY_REPS   runs per mode, min taken   (default 3)
//   SUBFEDAVG_BENCH_TELEMETRY_JSON   machine-readable output path
//
// Ordinary bench scale knobs (SUBFEDAVG_BENCH_CLIENTS/ROUNDS/...) apply.
#include <chrono>
#include <fstream>
#include <limits>
#include <sstream>

#include "bench_common.h"
#include "telemetry/telemetry.h"

namespace {

using namespace subfed;
using namespace subfed::bench;

/// One full federation run, wall-clock timed with a raw steady_clock read
/// (telemetry::StopWatch is itself level-gated, so it cannot time the off
/// mode).
double run_once(const FederatedData& data, const BenchScale& scale) {
  FlContext ctx = make_ctx(data, scale);
  std::unique_ptr<FederatedAlgorithm> algo =
      make_algo("subfedavg_un", ctx, un_params(0.5, scale));
  const DriverConfig driver = make_driver(scale);
  const auto start = std::chrono::steady_clock::now();
  run_federation(*algo, driver);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

int main() {
  const BenchScale scale = BenchScale::from_env(/*default_rounds=*/3);
  const DatasetSpec dataset = DatasetSpec::mnist();
  print_header("telemetry overhead", dataset, scale);
  const FederatedData data = make_data(dataset, scale);

  const std::size_t reps =
      static_cast<std::size_t>(env_int("SUBFEDAVG_BENCH_TELEMETRY_REPS", 3));
  double off_seconds = std::numeric_limits<double>::infinity();
  double counters_seconds = std::numeric_limits<double>::infinity();
  // Warm-up run (page cache, lazy allocations), then alternate modes so
  // thermal drift hits both equally; min-over-reps discards the noise.
  telemetry::set_level(telemetry::Level::kOff);
  run_once(data, scale);
  for (std::size_t rep = 0; rep < reps; ++rep) {
    telemetry::set_level(telemetry::Level::kOff);
    off_seconds = std::min(off_seconds, run_once(data, scale));
    telemetry::set_level(telemetry::Level::kCounters);
    counters_seconds = std::min(counters_seconds, run_once(data, scale));
  }
  telemetry::set_level(telemetry::Level::kOff);

  const double ratio = counters_seconds / off_seconds;
  std::printf("telemetry off:      %.3f s (min of %zu)\n", off_seconds, reps);
  std::printf("telemetry counters: %.3f s (min of %zu)\n", counters_seconds, reps);
  std::printf("overhead ratio:     %.4f\n", ratio);

  std::ostringstream json;
  json.precision(std::numeric_limits<double>::max_digits10);
  json << "[\n  {\"mode\": \"off\", \"seconds\": " << off_seconds
       << ", \"reps\": " << reps << ", \"rounds\": " << scale.rounds
       << ", \"clients\": " << scale.clients << "},\n"
       << "  {\"mode\": \"counters\", \"seconds\": " << counters_seconds
       << ", \"reps\": " << reps << ", \"rounds\": " << scale.rounds
       << ", \"clients\": " << scale.clients << "}\n]\n";

  const std::string json_path = env_string("SUBFEDAVG_BENCH_TELEMETRY_JSON", "");
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::trunc);
    SUBFEDAVG_CHECK(out.good(), "cannot open '" << json_path << "'");
    out << json.str();
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
