// Table 1 — per-dataset comparison of average personalized accuracy, pruned
// percentages, and measured communication cost for:
//   Standalone, FedAvg, MTL, FedProx, LG-FedAvg,
//   Sub-FedAvg (Un) @ {30, 50, 70}% and Sub-FedAvg (Hy) @ {50, 70, 90}%.
//
// Datasets default to all four (mnist, emnist, cifar10, cifar100); pass names
// as argv to restrict, e.g. `bench_table1 mnist cifar10`.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "fl/fedavg_ft.h"

using namespace subfed;
using namespace subfed::bench;

namespace {

struct Row {
  std::string algorithm;
  double accuracy = 0.0;
  std::string pruned_hybrid;       // "%filters + %params" column
  std::string pruned_unstructured; // "% parameters" column
  std::uint64_t comm_bytes = 0;
};

Row run_one(const std::string& name, FederatedAlgorithm& alg, const DriverConfig& d) {
  const RunResult result = run_federation(alg, d);
  Row row;
  row.algorithm = name;
  row.accuracy = result.final_avg_accuracy;
  row.comm_bytes = result.total_bytes();
  return row;
}

void run_dataset(const DatasetSpec& spec, const BenchScale& scale) {
  print_header("Table 1", spec, scale);
  const FederatedData data = make_data(spec, scale);
  const FlContext ctx = make_ctx(data, scale);
  const DriverConfig driver = make_driver(scale);

  std::vector<Row> rows;

  {
    Standalone alg(ctx);
    rows.push_back(run_one("Standalone", alg, driver));
    rows.back().pruned_hybrid = "-";
    rows.back().pruned_unstructured = "0";
  }
  {
    FedAvg alg(ctx);
    rows.push_back(run_one("FedAvg", alg, driver));
    rows.back().pruned_hybrid = "-";
    rows.back().pruned_unstructured = "0";
  }
  {
    FedMtl alg(ctx, kFedMtlLambda);
    rows.push_back(run_one("MTL", alg, driver));
    rows.back().pruned_hybrid = "-";
    rows.back().pruned_unstructured = "0";
  }
  {
    FedProx alg(ctx, kFedProxMu);
    rows.push_back(run_one("FedProx", alg, driver));
    rows.back().pruned_hybrid = "-";
    rows.back().pruned_unstructured = "0";
  }
  {
    LgFedAvg alg(ctx);
    rows.push_back(run_one("LG-FedAvg", alg, driver));
    rows.back().pruned_hybrid = "-";
    rows.back().pruned_unstructured = "0";
  }
  {
    // Two-step personalization (global FedAvg, then local fine-tuning at
    // evaluation) — the approach the paper's §2 argues against; included as
    // an extra reference row beyond the paper's own baselines.
    FedAvgFinetune alg(ctx, scale.epochs);
    rows.push_back(run_one("FedAvg+FT", alg, driver));
    rows.back().pruned_hybrid = "-";
    rows.back().pruned_unstructured = "0";
  }

  for (const double target : {0.3, 0.5, 0.7}) {
    SubFedAvg alg(ctx, un_config(target, scale));
    Row row = run_one("Sub-FedAvg (Un) p=" + format_percent(target, 0), alg, driver);
    row.pruned_hybrid = "-";
    row.pruned_unstructured = format_percent(alg.average_unstructured_pruned(), 1);
    rows.push_back(row);
  }
  // Hybrid targets per the paper: overall ~{50,70,90}% parameters pruned,
  // with channels around 40-50%.
  const std::vector<std::pair<double, double>> hy_targets = {
      {0.45, 0.5}, {0.45, 0.7}, {0.45, 0.9}};
  for (const auto& [channels, weights] : hy_targets) {
    SubFedAvg alg(ctx, hy_config(channels, weights, scale));
    Row row =
        run_one("Sub-FedAvg (Hy) p=" + format_percent(weights, 0), alg, driver);
    row.pruned_hybrid = format_percent(alg.average_structured_pruned(), 1) + " + " +
                        format_percent(alg.average_unstructured_pruned(), 1);
    row.pruned_unstructured = format_percent(alg.average_unstructured_pruned(), 1);
    rows.push_back(row);
  }

  TablePrinter table({"Algorithm", "Accuracy", "Pruned % (filters+params)",
                      "Unstructured % params", "Comm cost"});
  for (const Row& row : rows) {
    table.add_row({row.algorithm, format_percent(row.accuracy), row.pruned_hybrid,
                   row.pruned_unstructured,
                   row.comm_bytes == 0 ? "0"
                                       : format_bytes(static_cast<double>(row.comm_bytes))});
  }
  std::printf("%s\n", table.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  const BenchScale scale = BenchScale::from_env(/*default_rounds=*/16);

  std::vector<std::string> names;
  for (int i = 1; i < argc; ++i) names.emplace_back(argv[i]);
  if (names.empty()) names = {"mnist", "emnist", "cifar10", "cifar100"};

  for (const std::string& name : names) {
    run_dataset(DatasetSpec::by_name(name), scale);
  }
  return 0;
}
