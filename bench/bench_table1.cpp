// Table 1 — per-dataset comparison of average personalized accuracy, pruned
// percentages, and measured communication cost for:
//   Standalone, FedAvg, MTL, FedProx, LG-FedAvg,
//   Sub-FedAvg (Un) @ {30, 50, 70}% and Sub-FedAvg (Hy) @ {50, 70, 90}%.
//
// Datasets default to all four (mnist, emnist, cifar10, cifar100); pass names
// as argv to restrict, e.g. `bench_table1 mnist cifar10`.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

using namespace subfed;
using namespace subfed::bench;

namespace {

struct Row {
  std::string algorithm;
  double accuracy = 0.0;
  std::string pruned_hybrid;       // "%filters + %params" column
  std::string pruned_unstructured; // "% parameters" column
  std::uint64_t comm_bytes = 0;
};

Row run_one(const std::string& name, FederatedAlgorithm& alg, const DriverConfig& d) {
  const RunResult result = run_federation(alg, d);
  Row row;
  row.algorithm = name;
  row.accuracy = result.final_avg_accuracy;
  row.comm_bytes = result.total_bytes();
  return row;
}

void run_dataset(const DatasetSpec& spec, const BenchScale& scale) {
  print_header("Table 1", spec, scale);
  const FederatedData data = make_data(spec, scale);
  const FlContext ctx = make_ctx(data, scale);
  const DriverConfig driver = make_driver(scale);

  std::vector<Row> rows;

  // The dense baselines, registry name + display name + params. FedAvg+FT is
  // the two-step personalization §2 argues against, included as an extra
  // reference row beyond the paper's own baselines.
  struct Baseline {
    const char* display;
    const char* algo;
    AlgoParams params;
  };
  const Baseline baselines[] = {
      {"Standalone", "standalone", {}},
      {"FedAvg", "fedavg", {}},
      {"MTL", "fedmtl", AlgoParams{}.set_double("lambda", kFedMtlLambda)},
      {"FedProx", "fedprox", AlgoParams{}.set_double("mu", kFedProxMu)},
      {"LG-FedAvg", "lg_fedavg", {}},
      {"FedAvg+FT", "fedavg_ft", AlgoParams{}.set_size_t("finetune_epochs", scale.epochs)},
  };
  for (const Baseline& baseline : baselines) {
    auto alg = make_algo(baseline.algo, ctx, baseline.params);
    rows.push_back(run_one(baseline.display, *alg, driver));
    rows.back().pruned_hybrid = "-";
    rows.back().pruned_unstructured = "0";
  }

  for (const double target : {0.3, 0.5, 0.7}) {
    auto alg = make_algo("subfedavg_un", ctx, un_params(target, scale));
    Row row = run_one("Sub-FedAvg (Un) p=" + format_percent(target, 0), *alg, driver);
    row.pruned_hybrid = "-";
    row.pruned_unstructured =
        format_percent(as_subfedavg(*alg).average_unstructured_pruned(), 1);
    rows.push_back(row);
  }
  // Hybrid targets per the paper: overall ~{50,70,90}% parameters pruned,
  // with channels around 40-50%.
  const std::vector<std::pair<double, double>> hy_targets = {
      {0.45, 0.5}, {0.45, 0.7}, {0.45, 0.9}};
  for (const auto& [channels, weights] : hy_targets) {
    auto alg = make_algo("subfedavg_hy", ctx, hy_params(channels, weights, scale));
    Row row =
        run_one("Sub-FedAvg (Hy) p=" + format_percent(weights, 0), *alg, driver);
    const SubFedAvg& sub = as_subfedavg(*alg);
    row.pruned_hybrid = format_percent(sub.average_structured_pruned(), 1) + " + " +
                        format_percent(sub.average_unstructured_pruned(), 1);
    row.pruned_unstructured = format_percent(sub.average_unstructured_pruned(), 1);
    rows.push_back(row);
  }

  TablePrinter table({"Algorithm", "Accuracy", "Pruned % (filters+params)",
                      "Unstructured % params", "Comm cost"});
  for (const Row& row : rows) {
    table.add_row({row.algorithm, format_percent(row.accuracy), row.pruned_hybrid,
                   row.pruned_unstructured,
                   row.comm_bytes == 0 ? "0"
                                       : format_bytes(static_cast<double>(row.comm_bytes))});
  }
  std::printf("%s\n", table.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  const BenchScale scale = BenchScale::from_env(/*default_rounds=*/16);

  std::vector<std::string> names;
  for (int i = 1; i < argc; ++i) names.emplace_back(argv[i]);
  if (names.empty()) names = {"mnist", "emnist", "cifar10", "cifar100"};

  for (const std::string& name : names) {
    run_dataset(DatasetSpec::by_name(name), scale);
  }
  return 0;
}
