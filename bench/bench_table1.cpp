// Table 1 — per-dataset comparison of average personalized accuracy, pruned
// percentages, and measured communication cost for:
//   Standalone, FedAvg, MTL, FedProx, LG-FedAvg,
//   Sub-FedAvg (Un) @ {30, 50, 70}% and Sub-FedAvg (Hy) @ {50, 70, 90}%.
//
// The grid is three sweep descriptions (fl/sweep.h) — the dense baselines as
// an `algo` axis, each Sub-FedAvg variant as a `target` axis — sharded across
// a thread pool and aggregated to mean ± std over SUBFEDAVG_BENCH_SEEDS
// seeds. Set SUBFEDAVG_BENCH_OUT=dir to keep the per-run JSONs; the `sweep`
// tool's --aggregate mode then reproduces this table from the files alone.
//
// Datasets default to all four (mnist, emnist, cifar10, cifar100); pass names
// as argv to restrict, e.g. `bench_table1 mnist cifar10`.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "util/parse.h"

using namespace subfed;
using namespace subfed::bench;

namespace {

std::string display_name(const std::string& algo, const std::string& target) {
  if (algo == "standalone") return "Standalone";
  if (algo == "fedavg") return "FedAvg";
  if (algo == "fedmtl") return "MTL";
  if (algo == "fedprox") return "FedProx";
  if (algo == "lg_fedavg") return "LG-FedAvg";
  if (algo == "fedavg_ft") return "FedAvg+FT";
  const std::string rate =
      format_percent(parse_double_strict("target", target), 0);
  if (algo == "subfedavg_un") return "Sub-FedAvg (Un) p=" + rate;
  if (algo == "subfedavg_hy") return "Sub-FedAvg (Hy) p=" + rate;
  return algo;
}

void run_dataset(const std::string& name, const BenchScale& scale) {
  print_header("Table 1", DatasetSpec::by_name(name), scale);

  // The dense baselines as one `algo` axis. Every factory reads only the
  // algo-params it understands, so the MTL/FedProx/FT hyper-parameters ride
  // along in the shared base. FedAvg+FT is the two-step personalization §2
  // argues against, included as an extra reference row.
  SweepDescription baselines;
  baselines.base = make_spec(name, scale);
  baselines.base.algo_params.set_double("lambda", kFedMtlLambda)
      .set_double("mu", kFedProxMu)
      .set_size_t("finetune_epochs", scale.epochs);
  baselines.add_axis("algo=standalone,fedavg,fedmtl,fedprox,lg_fedavg,fedavg_ft");

  SweepDescription unstructured;
  unstructured.base = make_spec(name, scale);
  unstructured.base.algo = "subfedavg_un";
  unstructured.add_axis("target=0.3,0.5,0.7");

  // Hybrid targets per the paper: overall ~{50,70,90}% parameters pruned,
  // with channels around 40-50% (§4.2.3).
  SweepDescription hybrid;
  hybrid.base = make_spec(name, scale);
  hybrid.base.algo = "subfedavg_hy";
  hybrid.base.algo_params.set_double("channel_target", 0.45)
      .set_double("channel_step", adaptive_step(0.45, scale));
  hybrid.add_axis("target=0.5,0.7,0.9");

  std::vector<SweepRun> runs;
  for (SweepDescription* description : {&baselines, &unstructured, &hybrid}) {
    if (bench_seeds() > 1) description->add_replicas(bench_seeds());
    for (SweepRun& run : description->expand()) {
      run.index = runs.size();
      runs.push_back(std::move(run));
    }
  }

  const SweepSummary summary = run_sweep(runs, bench_sweep_options(name));
  std::vector<SweepRecord> records;
  for (const SweepRunOutcome& outcome : summary.outcomes) {
    if (outcome.ok) records.push_back(record_from_outcome(outcome));
  }

  AggregateOptions aggregate;
  aggregate.group_by = {"algo", "target"};
  aggregate.metrics = {"accuracy", "comm", "unstructured_pruned", "structured_pruned"};
  const std::vector<AggregateRow> rows = aggregate_records(records, aggregate);

  TablePrinter table({"Algorithm", "Accuracy", "Pruned % (filters+params)",
                      "Unstructured % params", "Comm cost"});
  for (const AggregateRow& row : rows) {
    const std::string& algo = row.group[0];
    const bool is_sub = algo.rfind("subfedavg", 0) == 0;
    const bool is_hybrid = algo == "subfedavg_hy";
    const auto unstructured_it = row.stats.find("unstructured_pruned");
    const auto structured_it = row.stats.find("structured_pruned");

    std::string pruned_hybrid = "-";
    if (is_hybrid && structured_it != row.stats.end() &&
        unstructured_it != row.stats.end()) {
      pruned_hybrid = format_percent(structured_it->second.mean, 1) + " + " +
                      format_percent(unstructured_it->second.mean, 1);
    }
    std::string pruned_unstructured = "0";
    if (is_sub && unstructured_it != row.stats.end()) {
      pruned_unstructured = format_percent(unstructured_it->second.mean, 1);
    }
    const Summary comm = row.stats.at("comm");
    table.add_row({display_name(algo, row.group[1]),
                   format_summary_percent(row.stats.at("accuracy")), pruned_hybrid,
                   pruned_unstructured,
                   comm.mean == 0.0 ? "0" : format_bytes(comm.mean)});
  }
  std::printf("%s\n", table.to_string().c_str());
  report_failed_runs(summary);
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  const BenchScale scale = BenchScale::from_env(/*default_rounds=*/16);

  std::vector<std::string> names;
  for (int i = 1; i < argc; ++i) names.emplace_back(argv[i]);
  if (names.empty()) names = {"mnist", "emnist", "cifar10", "cifar100"};

  for (const std::string& name : names) {
    run_dataset(name, scale);
  }
  return 0;
}
