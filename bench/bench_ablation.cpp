// Design-choice ablations (DESIGN.md §4):
//
//   A. Aggregation rule — per-parameter counting (author code) vs strict
//      intersection (paper prose): accuracy and global-model drift.
//   B. Download masking — the client only needs its kept entries; compare the
//      masked download this repo charges against dense downloads.
//   C. Prune schedule — fixed per-round rates vs the round-budget-adaptive
//      step used by the scaled benches.
//   D. Gate conditions — knock out the accuracy threshold and the
//      mask-distance condition of the paper's triple gate.
//   E. Slimming penalty — hybrid pruning with and without the BN-γ L1 term.
//
//   ./bench_ablation [dataset]   (default mnist)
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "comm/serialize.h"

using namespace subfed;
using namespace subfed::bench;

namespace {

void ablation_aggregation(const FlContext& ctx, const BenchScale& scale) {
  std::printf("-- A. aggregation rule: counting vs strict intersection --\n");
  TablePrinter table({"rule", "avg accuracy", "avg pruned %", "comm"});
  for (const bool strict : {false, true}) {
    auto alg = make_algo("subfedavg_un", ctx,
                         un_params(0.5, scale).set_bool("strict", strict));
    const RunResult result = run_federation(*alg, make_driver(scale));
    table.add_row({strict ? "strict intersection" : "counting (default)",
                   format_percent(result.final_avg_accuracy),
                   format_percent(as_subfedavg(*alg).average_unstructured_pruned(), 1),
                   format_bytes(static_cast<double>(result.total_bytes()))});
  }
  std::printf("%s\n", table.to_string().c_str());
}

void ablation_download(const FlContext& ctx, const BenchScale& scale) {
  std::printf("-- B. download masking: masked (charged) vs dense downlink --\n");
  auto alg = make_algo("subfedavg_un", ctx, un_params(0.7, scale));
  const RunResult result = run_federation(*alg, make_driver(scale));

  // The masked download is what the ledger charged; a dense downlink would
  // send the full global state to every sampled client each round.
  Model model = ctx.spec.build();
  const std::size_t dense_per_client = payload_bytes(model.state(), nullptr);
  const std::size_t per_round = std::max<std::size_t>(
      1, static_cast<std::size_t>(scale.sample_rate * static_cast<double>(scale.clients)));
  const std::uint64_t dense_down =
      static_cast<std::uint64_t>(dense_per_client) * per_round * scale.rounds;

  TablePrinter table({"downlink policy", "down bytes", "relative"});
  table.add_row({"masked (this repo / paper accounting)",
                 format_bytes(static_cast<double>(result.down_bytes)), "1.00x"});
  table.add_row({"dense", format_bytes(static_cast<double>(dense_down)),
                 format_float(static_cast<double>(dense_down) /
                                  static_cast<double>(result.down_bytes),
                              2) + "x"});
  std::printf("%s\n", table.to_string().c_str());
}

void ablation_schedule(const FlContext& ctx, const BenchScale& scale) {
  std::printf("-- C. prune schedule: fixed steps vs round-budget-adaptive --\n");
  TablePrinter table({"schedule", "achieved pruned %", "avg accuracy"});
  for (const double step : {0.05, 0.1, 0.2}) {
    auto alg = make_algo("subfedavg_un", ctx,
                         un_params(0.5, scale).set_double("step", step));
    const RunResult result = run_federation(*alg, make_driver(scale));
    table.add_row({"fixed " + format_percent(step, 0),
                   format_percent(as_subfedavg(*alg).average_unstructured_pruned(), 1),
                   format_percent(result.final_avg_accuracy)});
  }
  {
    auto alg = make_algo("subfedavg_un", ctx, un_params(0.5, scale));
    const RunResult result = run_federation(*alg, make_driver(scale));
    table.add_row({"adaptive (" + format_percent(adaptive_step(0.5, scale), 1) + ")",
                   format_percent(as_subfedavg(*alg).average_unstructured_pruned(), 1),
                   format_percent(result.final_avg_accuracy)});
  }
  std::printf("%s\n", table.to_string().c_str());
}

void ablation_gate(const FlContext& ctx, const BenchScale& scale) {
  std::printf("-- D. pruning-gate conditions (paper's triple condition) --\n");
  TablePrinter table({"gate", "achieved pruned %", "avg accuracy"});
  struct Variant {
    const char* name;
    double acc_threshold;
    double epsilon;
  };
  for (const Variant v : {Variant{"full gate (Accth=0.5, eps=1e-4)", 0.5, 1e-4},
                          Variant{"no accuracy condition", 0.0, 1e-4},
                          Variant{"no distance condition", 0.5, 0.0},
                          Variant{"neither (always prune)", 0.0, 0.0}}) {
    auto alg = make_algo("subfedavg_un", ctx,
                         un_params(0.5, scale)
                             .set_double("acc_threshold", v.acc_threshold)
                             .set_double("epsilon", v.epsilon));
    const RunResult result = run_federation(*alg, make_driver(scale));
    table.add_row({v.name,
                   format_percent(as_subfedavg(*alg).average_unstructured_pruned(), 1),
                   format_percent(result.final_avg_accuracy)});
  }
  std::printf("%s\n", table.to_string().c_str());
}

void ablation_slimming(const FlContext& ctx, const BenchScale& scale) {
  std::printf("-- E. BN-gamma L1 (network slimming) in hybrid mode --\n");
  TablePrinter table({"bn L1", "channels pruned %", "params pruned %", "avg accuracy"});
  for (const float l1 : {0.0f, 1e-4f, 1e-3f}) {
    auto alg = make_algo("subfedavg_hy", ctx,
                         hy_params(0.45, 0.5, scale)
                             .set_double("bn_l1", static_cast<double>(l1)));
    const RunResult result = run_federation(*alg, make_driver(scale));
    char label[32];
    std::snprintf(label, sizeof(label), "%g", static_cast<double>(l1));
    const SubFedAvg& sub = as_subfedavg(*alg);
    table.add_row({label, format_percent(sub.average_structured_pruned(), 1),
                   format_percent(sub.average_unstructured_pruned(), 1),
                   format_percent(result.final_avg_accuracy)});
  }
  std::printf("%s\n", table.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  const BenchScale scale = BenchScale::from_env(/*default_rounds=*/12);
  const DatasetSpec spec = DatasetSpec::by_name(argc > 1 ? argv[1] : "mnist");
  print_header("Ablations", spec, scale);

  const FederatedData data = make_data(spec, scale);
  const FlContext ctx = make_ctx(data, scale);

  ablation_aggregation(ctx, scale);
  ablation_download(ctx, scale);
  ablation_schedule(ctx, scale);
  ablation_gate(ctx, scale);
  ablation_slimming(ctx, scale);
  return 0;
}
