// Design-choice ablations (DESIGN.md §4):
//
//   A. Aggregation rule — per-parameter counting (author code) vs strict
//      intersection (paper prose): accuracy and global-model drift.
//   B. Download masking — the client only needs its kept entries; compare the
//      masked download this repo charges against dense downloads.
//   C. Prune schedule — fixed per-round rates vs the round-budget-adaptive
//      step used by the scaled benches.
//   D. Gate conditions — knock out the accuracy threshold and the
//      mask-distance condition of the paper's triple gate.
//   E. Slimming penalty — hybrid pruning with and without the BN-γ L1 term.
//
// Each ablation is a sweep description over `algo.*` hyper-parameter axes
// (fl/sweep.h), sharded across the bench thread pool; rows print in
// expansion order with the pruned-percentage metrics the sweep runner
// collects from the algorithm.
//
//   ./bench_ablation [dataset]   (default mnist)
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "comm/serialize.h"
#include "util/parse.h"

using namespace subfed;
using namespace subfed::bench;

namespace {

/// Expands `description`, runs it on the bench pool (per-run JSONs under
/// <SUBFEDAVG_BENCH_OUT>/<dataset>/<name> so the ablations don't clear each
/// other's artifacts), and prints one table row per run (expansion order):
/// label(outcome) + metric columns.
void run_table(const SweepDescription& description, const std::string& dataset,
               const std::string& name, TablePrinter& table,
               const std::function<std::vector<std::string>(const SweepRunOutcome&)>& row) {
  SweepOptions options = bench_sweep_options(dataset);
  if (!options.out_dir.empty()) options.out_dir += "/" + name;
  options.echo_progress = false;
  const SweepSummary summary = run_sweep(description.expand(), options);
  for (const SweepRunOutcome& outcome : summary.outcomes) {
    if (outcome.ok) table.add_row(row(outcome));
  }
  report_failed_runs(summary);
}

double metric(const SweepRunOutcome& outcome, const char* name) {
  const auto it = outcome.metrics.find(name);
  return it == outcome.metrics.end() ? 0.0 : it->second;
}

SweepDescription subfedavg_base(const std::string& dataset, const BenchScale& scale,
                                double target) {
  SweepDescription description;
  description.base = make_spec(dataset, scale);
  description.base.algo = "subfedavg_un";
  description.base.target = target;
  return description;
}

void ablation_aggregation(const std::string& dataset, const BenchScale& scale) {
  std::printf("-- A. aggregation rule: counting vs strict intersection --\n");
  SweepDescription description = subfedavg_base(dataset, scale, 0.5);
  description.add_axis("algo.strict=0,1");
  TablePrinter table({"rule", "avg accuracy", "avg pruned %", "comm"});
  run_table(description, dataset, "aggregation", table, [](const SweepRunOutcome& o) {
    return std::vector<std::string>{
        o.run.assignment[0].second == "1" ? "strict intersection" : "counting (default)",
        format_percent(o.result.final_avg_accuracy),
        format_percent(metric(o, "unstructured_pruned"), 1),
        format_bytes(static_cast<double>(o.result.total_bytes()))};
  });
  std::printf("%s\n", table.to_string().c_str());
}

void ablation_download(const std::string& dataset, const BenchScale& scale) {
  std::printf("-- B. download masking: masked (charged) vs dense downlink --\n");
  ExperimentSpec spec = make_spec(dataset, scale);
  spec.algo = "subfedavg_un";
  spec.target = 0.7;
  const ExecutedRun run = execute_experiment(spec);

  // The masked download is what the ledger charged; a dense downlink would
  // send the full global state to every sampled client each round.
  Model model = spec.model_spec().build();
  const std::size_t dense_per_client = payload_bytes(model.state(), nullptr);
  const std::size_t per_round = std::max<std::size_t>(
      1, static_cast<std::size_t>(scale.sample_rate * static_cast<double>(scale.clients)));
  const std::uint64_t dense_down =
      static_cast<std::uint64_t>(dense_per_client) * per_round * scale.rounds;

  TablePrinter table({"downlink policy", "down bytes", "relative"});
  table.add_row({"masked (this repo / paper accounting)",
                 format_bytes(static_cast<double>(run.result.down_bytes)), "1.00x"});
  table.add_row({"dense", format_bytes(static_cast<double>(dense_down)),
                 format_float(static_cast<double>(dense_down) /
                                  static_cast<double>(run.result.down_bytes),
                              2) + "x"});
  std::printf("%s\n", table.to_string().c_str());
}

void ablation_schedule(const std::string& dataset, const BenchScale& scale) {
  std::printf("-- C. prune schedule: fixed steps vs round-budget-adaptive --\n");
  // step=0 falls back to the round-budget-adaptive schedule, making the
  // comparison a single four-value axis over the spec field.
  SweepDescription description = subfedavg_base(dataset, scale, 0.5);
  description.add_axis("step=0.05,0.1,0.2,0");
  TablePrinter table({"schedule", "achieved pruned %", "avg accuracy"});
  run_table(description, dataset, "schedule", table, [&](const SweepRunOutcome& o) {
    const std::string& step = o.run.assignment[0].second;
    // The adaptive row's label shows the step the run actually resolved
    // (spec.step=0 → round-budget-adaptive, independent of the env override).
    const std::string label =
        step == "0"
            ? "adaptive (" +
                  format_percent(
                      adaptive_prune_step(0.5, scale.rounds, scale.sample_rate), 1) +
                  ")"
            : "fixed " + format_percent(parse_double_strict("step", step), 0);
    return std::vector<std::string>{label,
                                    format_percent(metric(o, "unstructured_pruned"), 1),
                                    format_percent(o.result.final_avg_accuracy)};
  });
  std::printf("%s\n", table.to_string().c_str());
}

void ablation_gate(const std::string& dataset, const BenchScale& scale) {
  std::printf("-- D. pruning-gate conditions (paper's triple condition) --\n");
  // The paper's triple gate, knocked out one condition at a time: the 2×2
  // cross-product of {Accth, 0} × {eps, 0} covers all four variants.
  SweepDescription description = subfedavg_base(dataset, scale, 0.5);
  description.add_axis("algo.acc_threshold=0.5,0");
  description.add_axis("algo.epsilon=0.0001,0");
  TablePrinter table({"gate", "achieved pruned %", "avg accuracy"});
  run_table(description, dataset, "gate", table, [](const SweepRunOutcome& o) {
    const bool has_acc = o.run.assignment[0].second != "0";
    const bool has_eps = o.run.assignment[1].second != "0";
    std::string label = has_acc && has_eps ? "full gate (Accth=0.5, eps=1e-4)"
                        : has_acc          ? "no distance condition"
                        : has_eps          ? "no accuracy condition"
                                           : "neither (always prune)";
    return std::vector<std::string>{label,
                                    format_percent(metric(o, "unstructured_pruned"), 1),
                                    format_percent(o.result.final_avg_accuracy)};
  });
  std::printf("%s\n", table.to_string().c_str());
}

void ablation_slimming(const std::string& dataset, const BenchScale& scale) {
  std::printf("-- E. BN-gamma L1 (network slimming) in hybrid mode --\n");
  SweepDescription description;
  description.base = make_spec(dataset, scale);
  description.base.algo = "subfedavg_hy";
  description.base.target = 0.5;
  description.base.algo_params.set_double("channel_target", 0.45)
      .set_double("channel_step", adaptive_step(0.45, scale));
  description.add_axis("algo.bn_l1=0,0.0001,0.001");
  TablePrinter table({"bn L1", "channels pruned %", "params pruned %", "avg accuracy"});
  run_table(description, dataset, "slimming", table, [](const SweepRunOutcome& o) {
    return std::vector<std::string>{o.run.assignment[0].second,
                                    format_percent(metric(o, "structured_pruned"), 1),
                                    format_percent(metric(o, "unstructured_pruned"), 1),
                                    format_percent(o.result.final_avg_accuracy)};
  });
  std::printf("%s\n", table.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  const BenchScale scale = BenchScale::from_env(/*default_rounds=*/12);
  const std::string dataset = argc > 1 ? argv[1] : "mnist";
  print_header("Ablations", DatasetSpec::by_name(dataset), scale);

  ablation_aggregation(dataset, scale);
  ablation_download(dataset, scale);
  ablation_schedule(dataset, scale);
  ablation_gate(dataset, scale);
  ablation_slimming(dataset, scale);
  return 0;
}
