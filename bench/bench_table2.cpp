// Table 2 — FLOP and parameter reduction census at the paper's target rates:
//   dense baselines                  → 0×, 0×
//   Sub-FedAvg (Un) p ∈ {30,50,70}%  → 0× FLOPs, {0.3, 0.5, 0.7}× parameters
//   Sub-FedAvg (Hy) p ∈ {50,70,90}%  → ~2.4× FLOPs (≈50% channels), {...}× params
//
// Following the paper (§4.2.3), FLOPs count convolution operations only;
// unstructured pruning therefore reports 0× FLOP reduction even though it
// zeroes weights, while channel pruning cuts conv cost quadratically
// (kept_in × kept_out). The census derives masks at the exact target rates on
// a representative model, exactly as the paper's table reports design points
// rather than trained-run averages.
//
// The dataset grid is a sweep expansion (fl/sweep.h): one `dataset` axis over
// a shared base spec, each expanded spec's census computed concurrently on
// the global pool and printed in expansion order.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "comm/channel.h"
#include "metrics/flops.h"
#include "nn/batchnorm.h"
#include "pruning/structured.h"
#include "pruning/unstructured.h"
#include "util/thread_pool.h"

using namespace subfed;
using namespace subfed::bench;

namespace {

std::string census(const ExperimentSpec& spec) {
  const DatasetSpec dataset = spec.dataset_spec();
  const ModelSpec mspec = spec.model_spec();
  Rng rng(spec.seed);
  Model model = mspec.build_init(rng);
  // Channel selection needs varied BN scales; emulate a trained network's
  // spread-out γ distribution.
  for (const ConvBlock& block : model.topology().conv_blocks) {
    Rng gamma_rng = rng.split(block.bn->gamma().name);
    for (std::size_t c = 0; c < block.bn->channels(); ++c) {
      block.bn->gamma().value[c] =
          static_cast<float>(std::fabs(gamma_rng.normal(0.0, 1.0)) + 0.01);
    }
  }

  std::string out;
  char head[160];
  std::snprintf(head, sizeof(head),
                "== Table 2 — %s (%s: %zu params, %zu conv FLOPs dense) ==\n",
                dataset.name.c_str(), dataset.channels == 3 ? "LeNet-5" : "CNN-5",
                dense_parameter_count(model), dense_conv_flops(model));
  out += head;

  // The cost column is MEASURED: each design point's masked state is actually
  // pushed through the channel's payload codec and the encoded size reported
  // (what one upload of this subnetwork materializes on the wire), not the
  // closed-form |W|·32bit formula.
  const StateDict dense_state = model.state();
  const std::size_t dense_update = encode_payload(dense_state, nullptr,
                                                  QuantCodec::kNone).size();
  auto measured_update = [&](const ModelMask& mask) {
    Model masked = mspec.build();
    masked.load_state(dense_state);
    mask.apply_to_weights(masked);
    return encode_payload(masked.state(), &mask, QuantCodec::kNone).size();
  };

  TablePrinter table({"Algorithm", "FLOP reduction", "Param reduction", "FLOP speedup",
                      "update bytes (measured)"});
  for (const char* baseline : {"Standalone", "FedAvg", "MTL", "LG-FedAvg"}) {
    table.add_row({baseline, "0x", "0x", "1.00x",
                   format_bytes(static_cast<double>(dense_update))});
  }

  for (const double target : {0.3, 0.5, 0.7}) {
    ModelMask mask = ModelMask::ones_like(model, MaskScope::kAllPrunable);
    mask = derive_magnitude_mask(model, mask, target);
    const ReductionReport r = reduction_report(model, nullptr, &mask);
    table.add_row({"Sub-FedAvg (Un), p=" + format_percent(target, 0), "0x",
                   format_float(r.param_reduction, 2) + "x",
                   format_float(r.flop_speedup, 2) + "x",
                   format_bytes(static_cast<double>(measured_update(mask)))});
  }

  // Hybrid: the paper's operating point prunes ~50% of the channels of EVERY
  // conv layer ("50% of channels pruned results in around 50% FLOP reduction
  // ... only 11 (out of 22) channels", §4.2.3), then unstructured-prunes the
  // FC layers until the OVERALL parameter reduction hits the target. The FC
  // rate is found by bisection because channel pruning already removes the
  // pruned channels' FC input columns.
  ChannelMask balanced = ChannelMask::ones_like(model);
  for (std::size_t b = 0; b < balanced.num_blocks(); ++b) {
    // Prune the floor(C/2) smallest-|γ| channels of this block.
    const BatchNorm2d* bn = model.topology().conv_blocks[b].bn;
    std::vector<std::pair<float, std::size_t>> order;
    for (std::size_t c = 0; c < balanced.block(b).size(); ++c) {
      order.emplace_back(std::fabs(const_cast<BatchNorm2d*>(bn)->gamma().value[c]), c);
    }
    std::sort(order.begin(), order.end());
    for (std::size_t i = 0; i < order.size() / 2; ++i) {
      balanced.block(b)[order[i].second] = 0;
    }
  }

  for (const double target : {0.5, 0.7, 0.9}) {
    double lo = 0.0, hi = 0.999;
    ReductionReport best{};
    double best_fc = 0.0;
    ModelMask best_mask;
    for (int iter = 0; iter < 24; ++iter) {
      const double fc_target = 0.5 * (lo + hi);
      ModelMask fc = ModelMask::ones_like(model, MaskScope::kFcOnly);
      fc = derive_magnitude_mask(model, fc, fc_target);
      const ReductionReport r = reduction_report(model, &balanced, &fc);
      if (r.param_reduction < target) {
        lo = fc_target;
      } else {
        hi = fc_target;
      }
      best = r;
      best_fc = fc_target;
      best_mask = std::move(fc);
    }
    const ModelMask upload_mask = balanced.to_model_mask(model).intersected(best_mask);
    table.add_row({"Sub-FedAvg (Hy), " + format_percent(balanced.pruned_fraction(), 0) +
                       " ch + " + format_percent(best_fc, 0) + " fc = " +
                       format_percent(best.param_reduction, 0),
                   format_float(best.flop_reduction, 2) + "x",
                   format_float(best.param_reduction, 2) + "x",
                   format_float(best.flop_speedup, 2) + "x",
                   format_bytes(static_cast<double>(measured_update(upload_mask)))});
  }
  out += table.to_string();
  out += '\n';
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  std::string axis = "dataset=";
  for (int i = 1; i < argc; ++i) {
    if (i != 1) axis += ',';
    axis += argv[i];
  }
  if (argc <= 1) axis += "mnist,emnist,cifar10,cifar100";

  SweepDescription description;
  description.base.seed = 7;
  description.add_axis(axis);
  const std::vector<SweepRun> runs = description.expand();

  // The census is pure model arithmetic (no federation), so compute the
  // expanded grid concurrently and print in expansion order.
  std::vector<std::string> reports(runs.size());
  ThreadPool::global().parallel_for(
      runs.size(), [&](std::size_t i) { reports[i] = census(runs[i].spec); });
  for (const std::string& report : reports) {
    std::printf("%s", report.c_str());
  }
  return 0;
}
