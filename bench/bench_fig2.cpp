// Figure 2 — average test accuracy over all clients vs average pruning
// percentage, on CIFAR-10, MNIST and EMNIST.
//
// One federation run per target pruning rate; the paper's curve rises to a
// knee around 30-50% sparsity (common parameters removed) and falls toward
// 90% (personal parameters pruned away).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

using namespace subfed;
using namespace subfed::bench;

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  const BenchScale scale = BenchScale::from_env(/*default_rounds=*/14);

  std::vector<std::string> names;
  for (int i = 1; i < argc; ++i) names.emplace_back(argv[i]);
  if (names.empty()) names = {"cifar10", "mnist", "emnist"};

  const std::vector<double> targets{0.0, 0.2, 0.4, 0.6, 0.8, 0.9};

  for (const std::string& name : names) {
    const DatasetSpec spec = DatasetSpec::by_name(name);
    print_header("Figure 2", spec, scale);
    const FederatedData data = make_data(spec, scale);
    const FlContext ctx = make_ctx(data, scale);
    const DriverConfig driver = make_driver(scale);

    TablePrinter table({"target pruned %", "achieved avg pruned %", "avg accuracy"});
    for (const double target : targets) {
      // The 0% point is Sub-FedAvg aggregation with no pruning (personalized
      // evaluation of the dense federated model): target 0, step 0.
      auto alg = make_algo("subfedavg_un", ctx, un_params(target, scale));
      const RunResult result = run_federation(*alg, driver);
      table.add_row({format_percent(target, 0),
                     format_percent(as_subfedavg(*alg).average_unstructured_pruned(), 1),
                     format_percent(result.final_avg_accuracy)});
    }
    std::printf("%s\n", table.to_string().c_str());
  }
  return 0;
}
